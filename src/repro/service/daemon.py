"""The asyncio mapping daemon behind ``fpfa-map serve``.

One process, three moving parts:

* an **HTTP front** (plain asyncio streams — no framework): a tiny
  JSON-over-HTTP/1.1 server, one request per connection, plus an
  NDJSON event stream per job for progress watching;
* a **dispatcher** that drains the :class:`~repro.service.queue.JobQueue`
  into the :class:`~repro.service.workers.WorkerPool` under a
  bounded-concurrency semaphore (at most ``workers`` jobs in flight);
* a **frontend memo**: compiled frontends keyed by
  (source digest, width, simplify, balance).  Compilation happens at
  most once per key — concurrent jobs needing the same frontend
  await one shared compile task — and the memo seeds exploration
  sweeps too, so a warm daemon never re-parses a source it has seen.

Endpoints (see ``docs/service.md`` for the full reference)::

    GET  /healthz            liveness + uptime
    GET  /stats              queue / store / worker / service counters
    GET  /metrics            Prometheus text exposition of the same
    POST /jobs               submit one job (map or explore)
    GET  /jobs               list jobs (?state= filter)
    GET  /jobs/<id>          one job (?wait=SECONDS long-polls)
    GET  /jobs/<id>/events   NDJSON progress stream until terminal
    GET  /trace              tracer snapshot (spans carry trace ids)
    POST /store/has          which of these store keys are held here
    POST /store/fetch        the stored records for these keys
    POST /shutdown           graceful stop

Invariants
----------
* A map job's response payload is **bit-identical** to ``fpfa-map
  map --json`` for the same flags — both are built by
  ``core.pipeline.report_payload`` /
  ``protocol.record_to_map_payload`` from the same metric dicts.
* Exactly one backend run per coalesce key: duplicate in-flight
  submissions join the running job, and finished work is served from
  the artifact store without touching the pool.
* The daemon binds loopback by default and speaks an unauthenticated
  protocol — it is an internal building block, not an internet-facing
  server; put a real proxy in front for anything shared.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Mapping
from urllib.parse import parse_qs, urlsplit

from repro.core.pipeline import Frontend
from repro.dse.runner import FrontendSpec, _compile_spec, frontend_spec
from repro.obs import trace
from repro.obs.export import FlightRecorder, trace_log_path_for
from repro.obs.metrics import MetricsRegistry
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    RETRY_AFTER_QUEUE_FULL,
    ProtocolError,
    coalesce_key,
    job_key,
    normalise_request,
    normalise_store_query,
    record_to_map_payload,
    request_point,
)
from repro.service.queue import Job, JobQueue, QueueFull
from repro.service.store import ArtifactStore
from repro.service.workers import (
    WorkerPool,
    run_chunk_job,
    run_explore_job,
    run_map_job,
    source_digest,
)

#: Compiled frontends kept warm before the oldest is evicted.
FRONTEND_MEMO_LIMIT = 128

#: Chunk keys remembered for the re-lease counter before the oldest
#: is forgotten (a forgotten key under-counts one re-lease; the set
#: must not grow with every chunk a long-lived daemon ever served).
CHUNK_MEMO_LIMIT = 4096


@dataclass
class ServiceStats:
    """Daemon-side counters (the ``service`` section of ``/stats``)."""

    submits: int = 0            #: accepted submissions
    coalesced: int = 0          #: folded into an in-flight job
    store_hits: int = 0         #: served from the artifact store
    computed: int = 0           #: jobs dispatched to the worker pool
    failed: int = 0             #: jobs that ended in FAILED
    frontends_compiled: int = 0  #: frontend memo misses (compiles)
    frontends_reused: int = 0   #: frontend memo hits
    peer_queries: int = 0       #: store-has/store-fetch requests
    peer_records: int = 0       #: records served to peer fetches

    def as_dict(self) -> dict:
        return dict(vars(self))


class MappingService:
    """The daemon: queue + pool + store behind an HTTP front."""

    def __init__(self, *, store=None, workers: int | None = None,
                 worker_mode: str = "process",
                 max_queue: int = 1024,
                 store_max_entries: int | None = None,
                 store_max_bytes: int | None = None):
        self._own_store: tempfile.TemporaryDirectory | None = None
        if store is None:
            # Ephemeral store: still fully functional (coalescing,
            # warm resubmits) for a daemon run without --store.
            self._own_store = tempfile.TemporaryDirectory(
                prefix="fpfa-service-")
            store = self._own_store.name
        self.store = store if isinstance(store, ArtifactStore) \
            else ArtifactStore(store)
        if store_max_entries is not None or \
                store_max_bytes is not None:
            # Bound the store now: an over-full inherited directory
            # is trimmed before the daemon serves its first request.
            self.store.set_bounds(store_max_entries, store_max_bytes)
        self.pool = WorkerPool(workers, worker_mode)
        self.queue = JobQueue(max_depth=max_queue,
                              observer=self._observe_job)
        self.stats = ServiceStats()
        #: Wall-clock start — presentation only (clients correlate it
        #: with their logs).  ``uptime`` everywhere derives from the
        #: monotonic twin: ``time.time()`` steps under NTP
        #: corrections, so a wall-clock uptime can jump or go
        #: negative (the queue.py convention from PR 5).
        self.started_at = time.time()  # fpfa-lint: wall-clock
        self.started_mono = time.monotonic()
        self.address: tuple[str, int] | None = None
        self.metrics = MetricsRegistry()
        self._build_metrics()
        #: Chunk keys already leased once — a repeat is a re-lease
        #: (work stealing / a coordinator retry landing here).
        self._seen_chunks: dict[str, None] = {}
        #: (source digest, frontend spec) -> asyncio.Task[Frontend]
        self._frontends: dict[tuple[str, FrontendSpec],
                              asyncio.Task] = {}
        self._server: asyncio.AbstractServer | None = None
        self._events: asyncio.Condition | None = None
        self._slots: asyncio.Semaphore | None = None
        self._shutdown: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        #: Flight recorder streaming finished spans to an NDJSON log
        #: beside the store — only when the daemon starts with
        #: tracing enabled (FPFA_TRACE=1); otherwise no file, no
        #: sink, no cost.
        self._recorder: FlightRecorder | None = None
        if trace.enabled():
            log_path = trace_log_path_for(self.store)
            if log_path is not None:
                self._recorder = FlightRecorder(log_path)
                trace.TRACER.add_sink(self._recorder)

    # -- lifecycle ----------------------------------------------------

    async def start(self, host: str = DEFAULT_HOST,
                    port: int = DEFAULT_PORT) -> tuple[str, int]:
        """Bind, start dispatching, return the (host, port) bound
        (``port=0`` picks a free one)."""
        self._events = asyncio.Condition()
        self._slots = asyncio.Semaphore(self.pool.workers)
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        self.address = self._server.sockets[0].getsockname()[:2]
        self._dispatcher = asyncio.create_task(self._dispatch())
        return self.address

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    async def close(self) -> None:
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.pool.shutdown()
        if self._recorder is not None:
            trace.TRACER.remove_sink(self._recorder)
            self._recorder.close()
        if self._own_store is not None:
            self._own_store.cleanup()

    async def run(self, host: str = DEFAULT_HOST,
                  port: int = DEFAULT_PORT) -> None:
        """start → serve until /shutdown → close (the CLI's shape)."""
        await self.start(host, port)
        try:
            await self.wait_shutdown()
        finally:
            await self.close()

    # -- submission ---------------------------------------------------

    async def submit(self, raw) -> tuple[Job, bool]:
        """Admit one raw request; returns ``(job, coalesced)``.

        Raises :class:`ProtocolError` (400) on malformed requests and
        :class:`QueueFull` (503) at the depth bound.  Store hits
        complete the job before this returns — no backend run.
        """
        request = normalise_request(raw)
        key = job_key(request)
        # The store is sqlite+disk: look up BEFORE queueing, in an
        # executor, so the event loop never blocks on it — and so no
        # await sits between queue.submit and queue.finish below
        # (the dispatcher could pop the job in that window and
        # double-run it).
        record = None
        want_verified = request.get("verify_seed") is not None
        if request["kind"] == "map":
            loop = asyncio.get_running_loop()
            record = await loop.run_in_executor(
                None, lambda: self.store.lookup(
                    key, want_verified=want_verified))
        job, coalesced = self.queue.submit(request, key,
                                           coalesce_key(request))
        self.stats.submits += 1
        if request["kind"] == "sweep-chunk" and not coalesced:
            self._note_chunk_lease(key)
        if coalesced:
            self.stats.coalesced += 1
            await self._notify()
            return job, True
        if record is not None:
            self.stats.store_hits += 1
            payload = record_to_map_payload(
                record, file=request["file"],
                want_verified=want_verified)
            self.queue.finish(job, payload, cache="hit")
            await self._notify()
            return job, False
        await self._notify()
        return job, False

    # -- dispatch -----------------------------------------------------

    async def _dispatch(self) -> None:
        while True:
            async with self._events:
                await self._events.wait_for(
                    lambda: self.queue.depth > 0)
            # Claim a worker slot first: the pop happens when a slot
            # is actually free, so priorities apply to the backlog at
            # dispatch time, not at submission time.
            await self._slots.acquire()
            job = self.queue.pop()
            if job is None:
                self._slots.release()
                continue
            self.queue.mark_running(job)
            await self._notify()
            asyncio.create_task(self._run_job(job))

    async def _run_job(self, job: Job) -> None:
        try:
            if job.kind == "map":
                await self._run_map(job)
            elif job.kind == "sweep-chunk":
                await self._run_chunk(job)
            else:
                await self._run_explore(job)
        except asyncio.CancelledError:
            # Daemon shutdown mid-job: propagate so the task reads
            # as cancelled, not failed.
            raise
        except Exception as error:  # noqa: BLE001 — fault isolation
            self.stats.failed += 1
            self.queue.fail(job,
                            f"{type(error).__name__}: {error}")
        finally:
            self._slots.release()
            await self._notify()

    async def _run_map(self, job: Job) -> None:
        request = job.request
        frontend, reused = await self._frontend_for(request)
        job.add_event("frontend",
                      reused=reused, shipped=frontend is not None)
        record, info = await self._execute(run_map_job, request,
                                           frontend)
        self._adopt_spans(info)
        self.stats.computed += 1
        meta = {"cache": "miss", "frontend_reused": reused,
                "timings": info.get("timings"),
                "worker": info.get("worker")}
        if record["ok"]:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, self.store.admit, job.key, record)
            payload = record_to_map_payload(
                record, file=request["file"],
                want_verified=request["verify_seed"] is not None)
            self.queue.finish(job, payload, **meta)
        else:
            self.stats.failed += 1
            self.queue.fail(job, record["error"], **meta)

    async def _run_explore(self, job: Job) -> None:
        request = job.request
        frontends = self._compiled_frontends(request["source"])
        payload, info = await self._execute(
            run_explore_job, request, str(self.store.root), frontends)
        self._adopt_spans(info)
        self.stats.computed += 1
        # The sweep wrote records through its own cache handle on our
        # store directory; drop the stale incremental entry count.
        self.store.invalidate_count()
        await self._trim_store()
        self.queue.finish(job, payload, cache="sweep",
                          worker=info.get("worker"),
                          stats=info.get("stats"))

    async def _run_chunk(self, job: Job) -> None:
        """One distributed-sweep lease: evaluate the chunk's points
        against the artifact store and return records by cache key.
        The chunk runs as one worker-pool task (chunks of one sweep
        spread across the pool), and its fresh records land in the
        store, so a re-leased or repeated chunk is pure store reads.
        """
        request = job.request
        frontends = self._compiled_frontends(request["source"])
        payload, info = await self._execute(
            run_chunk_job, request, str(self.store.root), frontends)
        self._adopt_spans(info)
        self.stats.computed += 1
        self.store.invalidate_count()  # records written by the worker
        await self._trim_store()
        self.queue.finish(job, payload, cache="chunk",
                          worker=info.get("worker"),
                          stats=info.get("stats"))

    async def _trim_store(self) -> None:
        """Re-enforce the store bounds after a worker-side write.

        Sweep and chunk jobs write records through the worker's own
        cache handle, which shares the directory and manifest but
        not this instance's ``max_*`` configuration — so eviction
        has to happen here, off the event loop.
        """
        if self.store.max_entries is None \
                and self.store.max_bytes is None:
            return
        await asyncio.get_running_loop().run_in_executor(
            None, self.store.gc)

    async def _execute(self, fn, *args):
        """Run one executor function on the pool without blocking the
        event loop."""
        return await asyncio.wrap_future(self.pool.submit(fn, *args))

    def _adopt_spans(self, info: dict) -> None:
        """Fold a worker's captured spans into this daemon's tracer.

        A process-mode worker's tracer ring is invisible from here;
        the executor rides its finished spans home in the ``info``
        side channel (see ``workers._stash_spans``).  Adoption puts
        them in the ring ``GET /trace`` serves and forwards them to
        the flight recorder.  The key is *popped* so job meta and
        result payloads never grow a tracing field.  A thread-mode
        worker already recorded straight into this process's tracer —
        only spans stamped with a foreign pid are adopted, so nothing
        is double-counted.
        """
        spans = info.pop("trace_spans", None)
        if spans:
            pid = os.getpid()
            foreign = [entry for entry in spans
                       if entry.get("pid") != pid]
            if foreign:
                trace.adopt(foreign)

    # -- frontend memo ------------------------------------------------

    async def _frontend_for(self, request
                            ) -> tuple[Frontend | None, bool]:
        """The memoised frontend for one map request, compiling at
        most once per (source, spec) across concurrent jobs.

        Returns ``(frontend, reused)``; ``(None, False)`` when the
        point is unrealisable or the compile fails — the worker then
        recompiles inside ``evaluate_point`` and yields the canonical
        failure record.
        """
        try:
            spec = frontend_spec(request_point(request))
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 — surfaces per record
            return None, False
        memo_key = (source_digest(request["source"]), spec)
        task = self._frontends.get(memo_key)
        reused = task is not None
        if task is None:
            loop = asyncio.get_running_loop()
            task = asyncio.ensure_future(loop.run_in_executor(
                None, _compile_spec, request["source"], spec))
            self._frontends[memo_key] = task
            self.stats.frontends_compiled += 1
            while len(self._frontends) > FRONTEND_MEMO_LIMIT:
                self._frontends.pop(next(iter(self._frontends)))
        else:
            self.stats.frontends_reused += 1
        try:
            return await task, reused
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 — surfaces per record
            self._frontends.pop(memo_key, None)
            return None, False

    def _compiled_frontends(self, source: str
                            ) -> dict[FrontendSpec, Frontend]:
        """Every successfully compiled frontend for *source* — the
        seed an exploration sweep starts from."""
        digest = source_digest(source)
        compiled = {}
        for (memo_digest, spec), task in self._frontends.items():
            if memo_digest == digest and task.done() \
                    and task.exception() is None:
                compiled[spec] = task.result()
        return compiled

    # -- notification -------------------------------------------------

    async def _notify(self) -> None:
        async with self._events:
            self._events.notify_all()

    async def _wait_terminal(self, job: Job,
                             timeout: float | None) -> None:
        try:
            async with self._events:
                await asyncio.wait_for(
                    self._events.wait_for(lambda: job.terminal),
                    timeout)
        except asyncio.TimeoutError:
            pass

    # -- stats --------------------------------------------------------

    @property
    def uptime(self) -> float:
        """Seconds since start — monotonic, immune to clock steps."""
        return time.monotonic() - self.started_mono

    def describe(self) -> dict:
        return {
            "uptime": round(self.uptime, 3),
            "started_at": self.started_at,
            "service": self.stats.as_dict(),
            "queue": self.queue.stats(),
            "workers": self.pool.describe(),
            "store": {"root": str(self.store.root),
                      **self.store.stats()},
        }

    # -- metrics ------------------------------------------------------

    def _build_metrics(self) -> None:
        """Register the daemon's metric families.

        Two feeding models: lifetime totals the service already
        counts (``ServiceStats``, queue, store) are adopted at scrape
        time via ``set_total``/``set`` in :meth:`_sync_metrics` — one
        source of truth, no drift; latency histograms and the lease
        counters are fed at event time (:meth:`_observe_job`,
        :meth:`submit`) because the data is gone by scrape time.
        """
        registry = self.metrics
        self._m_uptime = registry.gauge(
            "fpfa_service_uptime_seconds",
            "Seconds since the daemon started (monotonic).")
        self._m_service = {
            name: registry.counter(
                f"fpfa_service_{name}",
                f"Lifetime {name.replace('_', ' ')} "
                f"(the /stats service section).")
            for name in ("submits", "coalesced", "store_hits",
                         "computed", "failed", "peer_queries",
                         "peer_records")}
        self._m_frontends = registry.counter(
            "fpfa_service_frontends",
            "Frontend memo outcomes by result.",
            labels=("result",))
        self._m_frontend_reuse = registry.gauge(
            "fpfa_frontend_reuse_ratio",
            "Fraction of frontend requests served from the memo.")
        self._m_queue_gauges = {
            name: registry.gauge(
                f"fpfa_queue_{name}",
                f"Queue {name.replace('_', ' ')} right now.")
            for name in ("depth", "inflight", "jobs")}
        self._m_queue_counters = {
            name: registry.counter(
                f"fpfa_queue_{name}",
                f"Lifetime queue {name} count.")
            for name in ("coalesced", "evicted", "compactions")}
        self._m_queue_states = registry.gauge(
            "fpfa_queue_jobs_by_state",
            "Tracked jobs by lifecycle state.",
            labels=("state",))
        self._m_jobs = registry.counter(
            "fpfa_jobs", "Terminal jobs by kind and outcome.",
            labels=("kind", "state"))
        self._m_job_wait = registry.histogram(
            "fpfa_job_wait_seconds",
            "Seconds a job spent queued before running, by kind.",
            labels=("kind",))
        self._m_job_runtime = registry.histogram(
            "fpfa_job_runtime_seconds",
            "Seconds a job spent running, by kind.",
            labels=("kind",))
        self._m_store_entries = registry.gauge(
            "fpfa_store_entries", "Records in the artifact store.")
        self._m_store_hit_rate = registry.gauge(
            "fpfa_store_hit_rate",
            "Fraction of store lookups that hit.")
        self._m_store_counters = {
            name: registry.counter(
                f"fpfa_store_{name}",
                f"Lifetime artifact store "
                f"{name.replace('_', ' ')}.")
            for name in ("hits", "misses", "evictions",
                         "put_errors")}
        self._m_store_bytes = registry.gauge(
            "fpfa_store_bytes",
            "Bytes of records in the artifact store (from the "
            "manifest; absent while the index tier is degraded).")
        self._m_workers = registry.gauge(
            "fpfa_workers", "Worker pool size by mode.",
            labels=("mode",))
        self._m_chunk_leases = registry.counter(
            "fpfa_chunk_leases",
            "Distributed sweep-chunk leases accepted.")
        self._m_chunk_releases = registry.counter(
            "fpfa_chunk_releases",
            "Sweep-chunk keys leased more than once (a re-lease "
            "after work stealing or a coordinator retry).")

    def _observe_job(self, event: str, job: Job) -> None:
        """Queue observer: feed the latency histograms the moment a
        job goes terminal (its monotonic durations are exact then;
        at scrape time an evicted job would be gone)."""
        if event not in ("done", "failed"):
            return
        self._m_jobs.inc(kind=job.kind, state=job.state)
        self._m_job_wait.observe(job.waited, kind=job.kind)
        runtime = job.runtime
        if runtime is not None:
            self._m_job_runtime.observe(runtime, kind=job.kind)

    def _note_chunk_lease(self, key: str) -> None:
        self._m_chunk_leases.inc()
        if key in self._seen_chunks:
            self._m_chunk_releases.inc()
            return
        self._seen_chunks[key] = None
        while len(self._seen_chunks) > CHUNK_MEMO_LIMIT:
            self._seen_chunks.pop(next(iter(self._seen_chunks)))

    def _sync_metrics(self, described: dict) -> None:
        """Adopt the scrape-time truth from one ``describe()``."""
        self._m_uptime.set(round(described["uptime"], 3))
        service = described["service"]
        for name, counter in self._m_service.items():
            counter.set_total(service[name])
        self._m_frontends.set_total(service["frontends_compiled"],
                                    result="compiled")
        self._m_frontends.set_total(service["frontends_reused"],
                                    result="reused")
        requests = (service["frontends_compiled"]
                    + service["frontends_reused"])
        self._m_frontend_reuse.set(
            round(service["frontends_reused"] / requests, 6)
            if requests else 0.0)
        queue = described["queue"]
        for name, gauge in self._m_queue_gauges.items():
            gauge.set(queue[name])
        for name, counter in self._m_queue_counters.items():
            counter.set_total(queue[name])
        for state, count in queue["states"].items():
            self._m_queue_states.set(count, state=state)
        store = described["store"]
        self._m_store_entries.set(store["entries"])
        self._m_store_hit_rate.set(store["hit_rate"])
        if store.get("bytes") is not None:
            self._m_store_bytes.set(store["bytes"])
        for name, counter in self._m_store_counters.items():
            counter.set_total(store[name])
        workers = described["workers"]
        self._m_workers.set(workers["workers"],
                            mode=workers["mode"])

    def _render_metrics(self) -> str:
        """One scrape: sync gauges/totals from describe(), render.

        Runs in an executor (describe() walks the store directory);
        the event-time metrics (histograms, lease counters) are
        already up to date.
        """
        self._sync_metrics(self.describe())
        return self.metrics.render()

    # -- HTTP front ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            method, target, body = await _read_request(reader)
            await self._route(method, target, body, writer)
        except _HttpError as error:
            await _send_json(writer, error.status,
                             {"error": str(error)},
                             headers=error.headers)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        except asyncio.CancelledError:
            # Daemon shutdown while this connection long-polls or
            # streams: re-raise so the task finishes *cancelled*
            # (task.cancelled() is true, nothing is logged as
            # "exception never retrieved") instead of swallowing
            # the cancellation.  The writer is closed in `finally`
            # either way; the client sees the connection drop.
            raise
        except Exception as error:  # noqa: BLE001 — keep serving
            try:
                await _send_json(writer, 500,
                                 {"error": f"{type(error).__name__}: "
                                           f"{error}"})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, method: str, target: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        if method == "GET" and path == "/healthz":
            await _send_json(writer, 200, {
                "ok": True,
                "uptime": round(self.uptime, 3),
                "started_at": self.started_at})
        elif method == "GET" and path == "/stats":
            # describe() reads the store manifest (sqlite I/O, or a
            # full directory walk when the index tier is degraded) —
            # disk work that must not stall the event loop.
            stats = await asyncio.get_running_loop() \
                .run_in_executor(None, self.describe)
            await _send_json(writer, 200, stats)
        elif method == "GET" and path == "/metrics":
            # Same executor rule: the scrape syncs from describe().
            text = await asyncio.get_running_loop() \
                .run_in_executor(None, self._render_metrics)
            await _send_text(
                writer, 200, text,
                content_type="text/plain; version=0.0.4; "
                             "charset=utf-8")
        elif method == "POST" and path == "/jobs":
            await self._handle_submit(body, writer)
        elif method == "GET" and path == "/jobs":
            state = (query.get("state") or [None])[0]
            await _send_json(writer, 200, {
                "jobs": [job.view(with_result=False)
                         for job in self.queue.list_jobs(state)]})
        elif method == "GET" and path.startswith("/jobs/"):
            await self._handle_job_get(path, query, writer)
        elif method == "GET" and path == "/trace":
            # Debug view of the tracer: rollups plus the recent-entry
            # ring, every span carrying its trace/span/parent ids —
            # what `fpfa-map trace export` harvests to stitch a
            # distributed sweep's tree.  Cheap enough to serve inline
            # (one lock, bounded copies).
            snap = trace.snapshot()
            snap["pid"] = os.getpid()
            await _send_json(writer, 200, snap)
        elif method == "POST" and path == "/store/has":
            await self._handle_store(body, writer, fetch=False)
        elif method == "POST" and path == "/store/fetch":
            await self._handle_store(body, writer, fetch=True)
        elif method == "POST" and path == "/shutdown":
            await _send_json(writer, 200, {"ok": True})
            self.request_shutdown()
        else:
            raise _HttpError(404, f"no route for {method} {path}")

    async def _handle_submit(self, body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        try:
            raw = json.loads(body.decode("utf-8") or "null")
        except ValueError:
            raise _HttpError(400, "request body is not valid JSON")
        try:
            job, coalesced = await self.submit(raw)
        except ProtocolError as error:
            raise _HttpError(400, str(error))
        except QueueFull as error:
            # Overload is transient by construction (jobs drain);
            # tell retrying clients when it is worth coming back so
            # they pace themselves instead of hammering the queue.
            raise _HttpError(
                503, str(error),
                headers={"Retry-After":
                         f"{RETRY_AFTER_QUEUE_FULL:g}"})
        await _send_json(writer, 200,
                         {"job": job.view(), "coalesced": coalesced})

    async def _handle_store(self, body: bytes,
                            writer: asyncio.StreamWriter, *,
                            fetch: bool) -> None:
        """The peering side channel: ``store-has`` answers presence
        from the manifest without touching hit/miss accounting (a
        peer probing is not a lookup this daemon failed to serve);
        ``store-fetch`` serves the records through the normal
        :meth:`~repro.service.store.ArtifactStore.lookup` policy —
        fetched records are real served traffic and count."""
        try:
            raw = json.loads(body.decode("utf-8") or "null")
        except ValueError:
            raise _HttpError(400, "request body is not valid JSON")
        try:
            query = normalise_store_query(raw)
        except ProtocolError as error:
            raise _HttpError(400, str(error))
        self.stats.peer_queries += 1
        want_verified = query["verified"]
        loop = asyncio.get_running_loop()
        if fetch:
            def fetch_records() -> dict:
                records = {}
                for key in query["keys"]:
                    record = self.store.lookup(
                        key, want_verified=want_verified)
                    if record is not None:
                        records[key] = record
                return records
            records = await loop.run_in_executor(None, fetch_records)
            self.stats.peer_records += len(records)
            await _send_json(writer, 200, {"records": records})
        else:
            def probe_keys() -> list:
                return [key for key in query["keys"]
                        if self.store.probe(
                            key, want_verified=want_verified)]
            present = await loop.run_in_executor(None, probe_keys)
            await _send_json(writer, 200, {"present": present})

    async def _handle_job_get(self, path: str, query: dict,
                              writer: asyncio.StreamWriter) -> None:
        segments = path.split("/")  # "", "jobs", <id>[, "events"]
        job = self.queue.get(segments[2])
        if job is None:
            raise _HttpError(404, f"unknown job {segments[2]!r}")
        if len(segments) == 4 and segments[3] == "events":
            await self._stream_events(job, writer)
            return
        if len(segments) != 3:
            raise _HttpError(404, f"no route for {path}")
        wait = (query.get("wait") or [None])[0]
        if wait is not None and not job.terminal:
            try:
                timeout = min(max(float(wait), 0.0), 300.0)
            except ValueError:
                raise _HttpError(400, f"bad wait value {wait!r}")
            await self._wait_terminal(job, timeout)
        await _send_json(writer, 200, job.view())

    async def _stream_events(self, job: Job,
                             writer: asyncio.StreamWriter) -> None:
        """NDJSON progress stream: replay, then follow to terminal.

        Close-delimited (no Content-Length): the client reads lines
        until the daemon closes the connection after the terminal
        event.
        """
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        index = 0
        while True:
            while index < len(job.events):
                line = json.dumps(job.events[index],
                                  sort_keys=True) + "\n"
                writer.write(line.encode("utf-8"))
                index += 1
            await writer.drain()
            if job.terminal and index >= len(job.events):
                return
            async with self._events:
                await self._events.wait_for(
                    lambda: len(job.events) > index or job.terminal)


# ---------------------------------------------------------------------------
# Minimal HTTP plumbing (stdlib-only, one request per connection)
# ---------------------------------------------------------------------------

#: Bound on request bodies (a kernel source is a few KB; 8 MB leaves
#: room for generated programs without letting a client exhaust RAM).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _HttpError(Exception):
    def __init__(self, status: int, message: str,
                 headers: Mapping[str, str] | None = None):
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


async def _read_request(reader: asyncio.StreamReader
                        ) -> tuple[str, str, bytes]:
    request_line = await reader.readline()
    try:
        method, target, __ = \
            request_line.decode("latin-1").split(maxsplit=2)
    except ValueError:
        raise _HttpError(400, "malformed request line")
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, __, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _HttpError(400, "bad Content-Length")
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, body


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            413: "Payload Too Large", 500: "Internal Server Error",
            503: "Service Unavailable"}


async def _send_body(writer: asyncio.StreamWriter, status: int,
                     body: bytes, content_type: str,
                     headers: Mapping[str, str] | None = None
                     ) -> None:
    reason = _REASONS.get(status, "OK")
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in (headers or {}).items())
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


async def _send_json(writer: asyncio.StreamWriter, status: int,
                     payload: dict,
                     headers: Mapping[str, str] | None = None
                     ) -> None:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    await _send_body(writer, status, body, "application/json",
                     headers=headers)


async def _send_text(writer: asyncio.StreamWriter, status: int,
                     text: str, *,
                     content_type: str = "text/plain; charset=utf-8"
                     ) -> None:
    await _send_body(writer, status, text.encode("utf-8"),
                     content_type)


# ---------------------------------------------------------------------------
# In-process daemon harness
# ---------------------------------------------------------------------------

class ServiceThread:
    """A daemon running on a background thread of this process.

    The shape tests, benchmarks and the smoke harness share: start,
    read the bound address, exercise it with the blocking client,
    stop.  ``worker_mode="thread"`` keeps everything in one process
    (no forking under a test runner); the flow's determinism makes
    results identical either way.
    """

    def __init__(self, host: str = DEFAULT_HOST, port: int = 0,
                 **service_kwargs):
        service_kwargs.setdefault("worker_mode", "thread")
        self._host = host
        self._port = port
        self._kwargs = service_kwargs
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.service: MappingService | None = None
        self.address: tuple[str, int] | None = None
        self.error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(target=self._run,
                                        name="fpfa-service",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread failed to start")
        if self.error is not None:
            raise RuntimeError(
                f"service thread failed: {self.error}")
        return self.address

    def stop(self, timeout: float = 30) -> None:
        if self._thread is None or not self._thread.is_alive():
            return
        if self._loop is not None and self.service is not None:
            self._loop.call_soon_threadsafe(
                self.service.request_shutdown)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 — report once
            self.error = error
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.service = MappingService(**self._kwargs)
        self.address = await self.service.start(self._host,
                                                self._port)
        self._ready.set()
        try:
            await self.service.wait_shutdown()
        finally:
            await self.service.close()
