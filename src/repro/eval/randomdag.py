"""Seeded random task graphs for the scaling experiments.

§VI-B and §VI-C both claim complexity "linear to the number of
clusters".  Experiment EXT-A measures that empirically by running the
three phases on random layered DAGs of increasing size; this module
generates those DAGs directly at the task-graph level (bypassing the
front-end so graph size is controlled exactly).

Graphs are layered: task operands reference results from earlier
layers (locality-biased), initial-memory words or constants, and a
configurable fraction of sink results is stored — the same shape the
lowered kernels have.
"""

from __future__ import annotations

import random

from repro.cdfg.ops import Address, OpKind
from repro.core.taskgraph import Operand, StoreTask, Task, TaskGraph

#: Binary operations sampled for random tasks (all clusterable kinds
#: appear so template matching gets exercised).
_RANDOM_OPS = (
    OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.AND, OpKind.OR,
    OpKind.XOR, OpKind.ADD, OpKind.MUL,  # bias toward add/mul
)


def random_task_graph(n_tasks: int, seed: int = 0, *,
                      width: int = 8, memory_fraction: float = 0.3,
                      const_fraction: float = 0.1,
                      store_fraction: float = 0.5) -> TaskGraph:
    """Generate a layered random task graph with *n_tasks* tasks.

    Parameters
    ----------
    width:
        Approximate tasks per layer (controls available parallelism).
    memory_fraction / const_fraction:
        Probability that an operand is an initial-memory word or a
        constant instead of an earlier task's result.
    store_fraction:
        Fraction of result-producing sink tasks whose value becomes a
        program output.
    """
    rng = random.Random(seed)
    graph = TaskGraph()
    layers: list[list[int]] = []
    produced: list[int] = []
    task_id = 0
    while task_id < n_tasks:
        layer_size = min(max(1, int(rng.gauss(width, width / 3))),
                         n_tasks - task_id)
        layer: list[int] = []
        for __ in range(layer_size):
            operands = []
            for __slot in range(2):
                roll = rng.random()
                if not produced or roll < memory_fraction:
                    address = Address("data", rng.randrange(4 * n_tasks))
                    operands.append(Operand.mem(address))
                elif roll < memory_fraction + const_fraction:
                    operands.append(Operand.const(rng.randint(-64, 64)))
                else:
                    # Bias toward recent layers for realistic locality.
                    back = min(len(layers),
                               1 + int(abs(rng.gauss(0, 2))))
                    pool = [tid for recent in layers[-back:]
                            for tid in recent] or produced
                    operands.append(Operand.task(rng.choice(pool)))
            kind = rng.choice(_RANDOM_OPS)
            graph.tasks[task_id] = Task(id=task_id, kind=kind,
                                        operands=operands)
            layer.append(task_id)
            task_id += 1
        layers.append(layer)
        produced.extend(layer)

    consumers = graph.consumers()
    sink_ids = [tid for tid, users in consumers.items() if not users]
    rng.shuffle(sink_ids)
    keep = max(1, int(len(sink_ids) * store_fraction))
    for index, tid in enumerate(sorted(sink_ids[:keep])):
        graph.stores.append(
            StoreTask(Address("result", index), Operand.task(tid)))
    # Sinks without a store would be dead code; store them too so the
    # graph is honest work (DCE-clean by construction).
    for index, tid in enumerate(sorted(sink_ids[keep:])):
        graph.stores.append(
            StoreTask(Address("extra", index), Operand.task(tid)))
    return graph
