"""Metric extraction from mapping reports.

Collects the quantities the experiments compare: graph sizes, cluster
counts, schedule shape, program cycles, utilisation, operand locality
and the energy proxy — one flat dict per program so the table renderer
and the benchmarks stay trivial.
"""

from __future__ import annotations

from repro.arch.energy import EnergyModel, measure_energy
from repro.core.pipeline import MappingReport

#: Keys of the dict :func:`mapping_metrics` returns — the stable
#: reporting schema sweep objectives are validated against.
METRIC_FIELDS = (
    "tasks", "clusters", "critical_path", "levels",
    "inserted_levels", "cycles", "stalls", "moves", "alu_util",
    "speedup", "reuse", "bypass", "mem_moves", "locality",
    "energy", "energy_per_op",
)

#: Extra keys :func:`multitile_metrics` adds when the multi-tile
#: stage ran (``fpfa-map map --tiles`` / an array-dimension sweep).
MULTITILE_METRIC_FIELDS = (
    "tiles", "makespan", "step_speedup", "cut_edges", "transfers",
    "transfer_hops", "transfer_cycles", "transfer_energy",
    "array_energy", "tile_util_mean", "tile_util_min",
    "load_imbalance",
)


def mapping_metrics(report: MappingReport,
                    energy_model: EnergyModel | None = None) -> dict:
    """All headline metrics of one mapped program."""
    energy = measure_energy(report.program, energy_model)
    stats = report.alloc_stats
    operand_events = max(stats.operand_events(), 1)
    return {
        "tasks": report.n_tasks,
        "clusters": report.n_clusters,
        "critical_path": report.schedule.critical_path,
        "levels": report.n_levels,
        "inserted_levels": report.schedule.inserted_levels,
        "cycles": report.n_cycles,
        "stalls": report.program.n_stall_cycles,
        "moves": report.program.n_moves,
        "alu_util": round(report.program.alu_utilisation(), 3),
        "speedup": round(report.speedup_vs_serial, 2),
        "reuse": stats.reuse_hits,
        "bypass": stats.bypasses,
        "mem_moves": stats.staged_moves,
        "locality": round(
            (stats.reuse_hits + stats.bypasses) / operand_events, 3),
        "energy": round(energy.total, 1),
        "energy_per_op": round(
            energy.total / max(report.n_tasks, 1), 2),
    }


def multitile_metrics(report: MappingReport,
                      energy_model: EnergyModel | None = None) -> dict:
    """Array-level metrics of a report whose multi-tile stage ran.

    ``array_energy`` is the single-tile energy proxy plus the per-hop
    communication adder — transfers only ever *add* energy.  Raises
    :class:`ValueError` when the report has no multi-tile stage.
    """
    multitile = report.multitile
    if multitile is None:
        raise ValueError("report has no multi-tile stage; map with "
                         "array=TileArrayParams(...) first")
    energy = measure_energy(report.program, energy_model)
    utils = multitile.tile_utilisations()
    return {
        "tiles": multitile.n_tiles,
        "makespan": multitile.makespan,
        "step_speedup": round(multitile.step_speedup, 2),
        "cut_edges": multitile.cut_edges,
        "transfers": multitile.n_transfers,
        "transfer_hops": multitile.transfer_hops,
        "transfer_cycles": multitile.transfer_cycles,
        "transfer_energy": round(multitile.transfer_energy, 1),
        "array_energy": round(
            energy.total + multitile.transfer_energy, 1),
        "tile_util_mean": round(sum(utils) / max(len(utils), 1), 3),
        "tile_util_min": round(min(utils), 3) if utils else 0.0,
        "load_imbalance": round(
            multitile.partition.imbalance(multitile.clustered), 3),
    }


def kernel_row(name: str, report: MappingReport, **extra) -> dict:
    """A table row for the kernel-suite experiments."""
    row = {"kernel": name}
    row.update(mapping_metrics(report))
    row.update(extra)
    return row
