"""Kernel suite: the paper's FIR example plus representative DSP code.

The FPFA targets 3G/4G wireless baseband processing (paper reference
[2]), so the suite covers the standard kernels of that domain, all
written in the C subset with compile-time-constant loop bounds (the
flow requires complete unrolling; loops with data-dependent trip
counts are the paper's declared future work).

Every kernel carries a deterministic input generator and a short
description, so tests, examples and benchmarks all run the same
workloads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.cdfg.statespace import StateSpace


@dataclass(frozen=True)
class Kernel:
    """One benchmark program in the C subset."""

    name: str
    source: str
    description: str
    make_state: Callable[[int], StateSpace]

    def initial_state(self, seed: int = 0) -> StateSpace:
        """Deterministic input statespace for this kernel."""
        return self.make_state(seed)


def _values(rng: random.Random, count: int,
            low: int = -99, high: int = 99) -> list[int]:
    return [rng.randint(low, high) for _ in range(count)]


# ---------------------------------------------------------------------------
# Kernel definitions
# ---------------------------------------------------------------------------

def fir_source(taps: int = 5) -> str:
    """The paper's §V FIR inner loop, parameterised in tap count."""
    return f"""
void main() {{
  sum = 0; i = 0;
  while (i < {taps}) {{
    sum = sum + a[i] * c[i]; i = i + 1;
  }}
}}
"""


def _fir_state(taps: int):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        return (StateSpace()
                .store_array("a", _values(rng, taps))
                .store_array("c", _values(rng, taps)))
    return make


def dot_source(length: int = 8) -> str:
    return f"""
void main() {{
  acc = 0;
  for (int i = 0; i < {length}; i++) {{
    acc = acc + x[i] * y[i];
  }}
}}
"""


def _two_array_state(first: str, second: str, length: int):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        return (StateSpace()
                .store_array(first, _values(rng, length))
                .store_array(second, _values(rng, length)))
    return make


def saxpy_source(length: int = 8) -> str:
    return f"""
void main() {{
  for (int i = 0; i < {length}; i++) {{
    z[i] = alpha * x[i] + y[i];
  }}
}}
"""


def _saxpy_state(length: int):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        return (StateSpace({"alpha": rng.randint(-9, 9)})
                .store_array("x", _values(rng, length))
                .store_array("y", _values(rng, length)))
    return make


def iir_biquad_source(samples: int = 4) -> str:
    """Direct-form-I biquad, unit-scaled integer coefficients."""
    return f"""
void main() {{
  x1 = 0; x2 = 0; y1 = 0; y2 = 0;
  for (int n = 0; n < {samples}; n++) {{
    int xn = in[n];
    int yn = b0*xn + b1*x1 + b2*x2 - a1*y1 - a2*y2;
    out[n] = yn;
    x2 = x1; x1 = xn;
    y2 = y1; y1 = yn;
  }}
}}
"""


def _iir_state(samples: int):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        state = StateSpace({
            "b0": rng.randint(-4, 4), "b1": rng.randint(-4, 4),
            "b2": rng.randint(-4, 4), "a1": rng.randint(-2, 2),
            "a2": rng.randint(-2, 2),
        })
        return state.store_array("in", _values(rng, samples, -20, 20))
    return make


def moving_average_source(length: int = 8, window: int = 3) -> str:
    return f"""
void main() {{
  for (int i = 0; i < {length - window + 1}; i++) {{
    int s = 0;
    for (int j = 0; j < {window}; j++) {{
      s = s + x[i + j];
    }}
    avg[i] = s / {window};
  }}
}}
"""


def _one_array_state(name: str, length: int, low: int = -99,
                     high: int = 99):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        return StateSpace().store_array(name, _values(rng, length, low,
                                                      high))
    return make


def matmul_source(size: int = 3) -> str:
    return f"""
void main() {{
  for (int i = 0; i < {size}; i++) {{
    for (int j = 0; j < {size}; j++) {{
      int s = 0;
      for (int k = 0; k < {size}; k++) {{
        s = s + ma[i * {size} + k] * mb[k * {size} + j];
      }}
      mc[i * {size} + j] = s;
    }}
  }}
}}
"""


def complex_multiply_source(pairs: int = 4) -> str:
    """Element-wise complex multiply: the 4-mult/2-add form."""
    return f"""
void main() {{
  for (int i = 0; i < {pairs}; i++) {{
    int ar = xr[i]; int ai = xi[i];
    int br = yr[i]; int bi = yi[i];
    zr[i] = ar * br - ai * bi;
    zi[i] = ar * bi + ai * br;
  }}
}}
"""


def _complex_state(pairs: int):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        state = StateSpace()
        for name in ("xr", "xi", "yr", "yi"):
            state = state.store_array(name, _values(rng, pairs, -30, 30))
        return state
    return make


def fft_butterflies_source(pairs: int = 4) -> str:
    """A column of radix-2 DIT butterflies with integer twiddles."""
    return f"""
void main() {{
  for (int i = 0; i < {pairs}; i++) {{
    int tr = wr[i] * br_[i] - wi[i] * bi_[i];
    int ti = wr[i] * bi_[i] + wi[i] * br_[i];
    xr_[i] = ar_[i] + tr;
    xi_[i] = ai_[i] + ti;
    yr_[i] = ar_[i] - tr;
    yi_[i] = ai_[i] - ti;
  }}
}}
"""


def _fft_state(pairs: int):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        state = StateSpace()
        for name in ("wr", "wi", "ar_", "ai_", "br_", "bi_"):
            state = state.store_array(name, _values(rng, pairs, -15, 15))
        return state
    return make


def correlation_source(length: int = 8, lags: int = 3) -> str:
    return f"""
void main() {{
  for (int lag = 0; lag < {lags}; lag++) {{
    int s = 0;
    for (int i = 0; i < {length - lags + 1}; i++) {{
      s = s + sig[i] * sig[i + lag];
    }}
    corr[lag] = s;
  }}
}}
"""


def horner_source(degree: int = 6) -> str:
    return f"""
void main() {{
  acc = 0;
  for (int i = 0; i < {degree + 1}; i++) {{
    acc = acc * t + coef[i];
  }}
}}
"""


def _horner_state(degree: int):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        return (StateSpace({"t": rng.randint(-5, 5)})
                .store_array("coef", _values(rng, degree + 1, -9, 9)))
    return make


def clip_source(length: int = 8) -> str:
    """Saturating quantiser — exercises branches / if-conversion."""
    return f"""
void main() {{
  for (int i = 0; i < {length}; i++) {{
    int v = x[i] * gain;
    if (v > 127) {{ v = 127; }} else {{ if (v < -128) {{ v = -128; }} }}
    q[i] = v;
  }}
}}
"""


def _clip_state(length: int):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        return (StateSpace({"gain": rng.randint(1, 6)})
                .store_array("x", _values(rng, length, -60, 60)))
    return make


def convolution_source(length: int = 8, taps: int = 3) -> str:
    """1-D convolution written with a helper function (exercises the
    front-end inliner on the mapping path)."""
    outputs = length - taps + 1
    return f"""
int mac(int acc, int p, int q) {{
  return acc + p * q;
}}

void main() {{
  for (int i = 0; i < {outputs}; i++) {{
    int s = 0;
    for (int j = 0; j < {taps}; j++) {{
      s = mac(s, sig[i + j], w[j]);
    }}
    conv[i] = s;
  }}
}}
"""


def _conv_state(length: int, taps: int):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        return (StateSpace()
                .store_array("sig", _values(rng, length, -20, 20))
                .store_array("w", _values(rng, taps, -5, 5)))
    return make


def dct4_source() -> str:
    """4-point DCT-II with a scaled integer coefficient matrix."""
    return """
void main() {
  for (int k = 0; k < 4; k++) {
    int s = 0;
    for (int n = 0; n < 4; n++) {
      s = s + cosm[k * 4 + n] * x[n];
    }
    X[k] = s;
  }
}
"""


def _dct_state():
    # 7-bit scaled cos((pi/4) * (n + 0.5) * k) coefficients
    cosm = [
        128, 128, 128, 128,
        118, 49, -49, -118,
        91, -91, -91, 91,
        49, -118, 118, -49,
    ]

    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        return (StateSpace()
                .store_array("cosm", cosm)
                .store_array("x", _values(rng, 4, -50, 50)))
    return make


def peak_source(length: int = 8) -> str:
    """Peak |x| detection — exercises intrinsics (abs/max)."""
    return f"""
void main() {{
  peak = 0;
  for (int i = 0; i < {length}; i++) {{
    peak = max(peak, abs(x[i]));
  }}
}}
"""


# ---------------------------------------------------------------------------
# The suite
# ---------------------------------------------------------------------------

def _matmul_state(size: int):
    def make(seed: int) -> StateSpace:
        rng = random.Random(seed)
        return (StateSpace()
                .store_array("ma", _values(rng, size * size, -9, 9))
                .store_array("mb", _values(rng, size * size, -9, 9)))
    return make


KERNELS: list[Kernel] = [
    Kernel("fir5", fir_source(5),
           "the paper's §V FIR filter (5 taps)", _fir_state(5)),
    Kernel("fir16", fir_source(16),
           "16-tap FIR filter", _fir_state(16)),
    Kernel("dot8", dot_source(8),
           "8-element dot product", _two_array_state("x", "y", 8)),
    Kernel("saxpy8", saxpy_source(8),
           "8-element scale-and-add (z = alpha*x + y)",
           _saxpy_state(8)),
    Kernel("iir4", iir_biquad_source(4),
           "direct-form-I biquad over 4 samples", _iir_state(4)),
    Kernel("avg8", moving_average_source(8, 3),
           "3-wide moving average over 8 samples",
           _one_array_state("x", 8)),
    Kernel("matmul3", matmul_source(3),
           "3x3 integer matrix multiply", _matmul_state(3)),
    Kernel("cmul4", complex_multiply_source(4),
           "4 element-wise complex multiplies", _complex_state(4)),
    Kernel("fft4", fft_butterflies_source(4),
           "4 radix-2 FFT butterflies", _fft_state(4)),
    Kernel("corr8", correlation_source(8, 3),
           "autocorrelation of 8 samples at 3 lags",
           _one_array_state("sig", 8, -20, 20)),
    Kernel("horner6", horner_source(6),
           "degree-6 Horner polynomial evaluation", _horner_state(6)),
    Kernel("clip8", clip_source(8),
           "saturating quantiser over 8 samples (branches)",
           _clip_state(8)),
    Kernel("peak8", peak_source(8),
           "peak |x| detection over 8 samples (intrinsics)",
           _one_array_state("x", 8, -80, 80)),
    Kernel("conv8", convolution_source(8, 3),
           "1-D convolution via an inlined mac() helper",
           _conv_state(8, 3)),
    Kernel("dct4", dct4_source(),
           "4-point DCT-II with integer coefficients", _dct_state()),
]


def get_kernel(name: str) -> Kernel:
    """Look up a suite kernel by name."""
    for kernel in KERNELS:
        if kernel.name == name:
            return kernel
    raise KeyError(f"no kernel named {name!r}; available: "
                   f"{', '.join(k.name for k in KERNELS)}")
