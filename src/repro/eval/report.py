"""Fixed-width table rendering for benchmarks and examples.

No third-party table dependency: the harness prints the same style of
rows the paper's tables would, and the benchmark transcripts stay
readable in plain terminals and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def render_table(rows: Sequence[Mapping], columns: Iterable[str]
                 | None = None, title: str | None = None) -> str:
    """Render dict rows as an aligned fixed-width table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    columns = list(columns)
    rendered_rows = [
        {column: _format(row.get(column, "")) for column in columns}
        for row in rows]
    widths = {column: max(len(column),
                          *(len(row[column]) for row in rendered_rows))
              for column in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered_rows:
        lines.append("  ".join(row[column].rjust(widths[column])
                               if _is_numeric(row[column])
                               else row[column].ljust(widths[column])
                               for column in columns))
    return "\n".join(lines)


def multitile_table(multitile, title: str | None = None) -> str:
    """Per-tile breakdown of a :class:`MultiTileReport`.

    One row per tile: clusters placed, ALU ops, utilisation over the
    array makespan, transfers sent/received, first/last busy step.
    """
    if title is None:
        title = (f"Per-tile breakdown ({multitile.n_tiles} tiles, "
                 f"{multitile.array.topology})")
    return render_table(multitile.tile_rows(), title=title)


def _format(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def _is_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
