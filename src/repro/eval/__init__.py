"""Workloads, metrics and reporting for the experiment harness.

* :mod:`repro.eval.kernels` — the paper's FIR filter plus a DSP kernel
  suite written in the C subset (the application class the FPFA
  targets: 3G/4G wireless baseband per reference [2]);
* :mod:`repro.eval.randomdag` — seeded random task graphs for the
  complexity-scaling experiment;
* :mod:`repro.eval.metrics` — turns mapping reports into comparable
  metric rows;
* :mod:`repro.eval.report` — fixed-width table rendering shared by
  benchmarks and examples.
"""

from repro.eval.kernels import KERNELS, Kernel, get_kernel
from repro.eval.metrics import kernel_row, mapping_metrics
from repro.eval.randomdag import random_task_graph
from repro.eval.report import render_table

__all__ = [
    "KERNELS",
    "Kernel",
    "get_kernel",
    "kernel_row",
    "mapping_metrics",
    "random_task_graph",
    "render_table",
]
