"""Sarkar's two-phase clustering baseline.

The paper's §VI is "based on the two-phased decomposition of
multiprocessor scheduling introduced by Sarkar [4]": (1) cluster the
task graph for an unbounded number of processors, internalising
communication edges; (2) schedule the clusters on the physical
processors.  This module implements the original method so the
experiments can show what the FPFA-specific extension (data-path
template clusters executing in a single cycle) buys.

Model: every task takes one cycle; a value crossing between clusters
costs ``comm_latency`` cycles; tasks of one cluster run sequentially
on one processor.  Phase 1 is edge-zeroing — walk the dependence
edges in a deterministic order and merge the two end clusters when
the estimated makespan on unbounded processors does not increase.
Phase 2 list-schedules whole clusters onto ``n_processors``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.taskgraph import TaskGraph


@dataclass
class SarkarResult:
    """Outcome of Sarkar clustering + cluster scheduling."""

    #: task id -> cluster index after internalization.
    cluster_of: dict[int, int] = field(default_factory=dict)
    n_clusters: int = 0
    #: makespan on unbounded processors after phase 1.
    unbounded_makespan: int = 0
    #: makespan after scheduling clusters on n processors.
    scheduled_makespan: int = 0
    #: dependence edges internalised by merging.
    internalised_edges: int = 0


def _makespan_unbounded(taskgraph: TaskGraph, cluster_of: dict[int, int],
                        comm_latency: int) -> int:
    """Longest path with zeroed intra-cluster edges, serialised
    clusters (tasks of one cluster run back to back in topo order)."""
    finish: dict[int, int] = {}
    cluster_ready: dict[int, int] = {}
    for task in taskgraph.topo_order():
        cluster = cluster_of[task.id]
        start = cluster_ready.get(cluster, 0)
        for pred in set(task.predecessor_ids()):
            latency = 0 if cluster_of[pred] == cluster else comm_latency
            start = max(start, finish[pred] + latency)
        finish[task.id] = start + 1
        cluster_ready[cluster] = finish[task.id]
    return max(finish.values(), default=0)


def sarkar_cluster_and_schedule(taskgraph: TaskGraph,
                                n_processors: int = 5,
                                comm_latency: int = 1) -> SarkarResult:
    """Run both Sarkar phases; see :class:`SarkarResult`."""
    result = SarkarResult()
    cluster_of = {task_id: index
                  for index, task_id in enumerate(sorted(taskgraph.tasks))}

    # Phase 1: edge zeroing.
    edges: list[tuple[int, int]] = []
    for task in taskgraph.topo_order():
        for pred in set(task.predecessor_ids()):
            edges.append((pred, task.id))
    best = _makespan_unbounded(taskgraph, cluster_of, comm_latency)
    for pred, succ in edges:
        if cluster_of[pred] == cluster_of[succ]:
            result.internalised_edges += 1
            continue
        merged = dict(cluster_of)
        victim = merged[succ]
        winner = merged[pred]
        for task_id, cluster in merged.items():
            if cluster == victim:
                merged[task_id] = winner
        # Zeroing an edge must not create a cycle at cluster level
        # (merging u->v while a path u->w->v exists would); Sarkar
        # enforces this through ordering constraints.
        if not _cluster_graph_acyclic(taskgraph, merged):
            continue
        candidate = _makespan_unbounded(taskgraph, merged, comm_latency)
        if candidate <= best:
            cluster_of = merged
            best = candidate
            result.internalised_edges += 1
    result.cluster_of = cluster_of
    result.unbounded_makespan = best

    # Phase 2: list-schedule whole clusters on n processors.
    clusters = sorted(set(cluster_of.values()))
    result.n_clusters = len(clusters)
    members: dict[int, list[int]] = {cluster: [] for cluster in clusters}
    for task in taskgraph.topo_order():
        members[cluster_of[task.id]].append(task.id)
    duration = {cluster: len(ids) for cluster, ids in members.items()}
    cluster_preds: dict[int, set[int]] = {c: set() for c in clusters}
    for pred, succ in edges:
        if cluster_of[pred] != cluster_of[succ]:
            cluster_preds[cluster_of[succ]].add(cluster_of[pred])

    finish: dict[int, int] = {}
    processor_free = [0] * n_processors
    # Priority: longest chain of cluster durations below (critical path).
    height: dict[int, int] = {}
    cluster_succs: dict[int, set[int]] = {c: set() for c in clusters}
    for succ, preds in cluster_preds.items():
        for pred in preds:
            cluster_succs[pred].add(succ)
    for cluster in reversed(_topo_clusters(clusters, cluster_preds)):
        below = [height[s] for s in cluster_succs[cluster]]
        height[cluster] = duration[cluster] + (max(below) if below else 0)

    remaining = set(clusters)
    while remaining:
        schedulable = [c for c in remaining
                       if all(p in finish for p in cluster_preds[c])]
        schedulable.sort(key=lambda c: (-height[c], c))
        progressed = False
        for cluster in schedulable:
            ready_at = max((finish[p] + comm_latency
                            for p in cluster_preds[cluster]), default=0)
            processor = min(range(n_processors),
                            key=lambda p: processor_free[p])
            start = max(ready_at, processor_free[processor])
            finish[cluster] = start + duration[cluster]
            processor_free[processor] = finish[cluster]
            remaining.remove(cluster)
            progressed = True
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("cluster scheduling stuck")
    result.scheduled_makespan = max(finish.values(), default=0)
    return result


def _cluster_graph_acyclic(taskgraph: TaskGraph,
                           cluster_of: dict[int, int]) -> bool:
    """Is the induced cluster digraph a DAG?"""
    clusters = sorted(set(cluster_of.values()))
    preds: dict[int, set[int]] = {cluster: set() for cluster in clusters}
    for task in taskgraph.tasks.values():
        for pred in task.predecessor_ids():
            if cluster_of[pred] != cluster_of[task.id]:
                preds[cluster_of[task.id]].add(cluster_of[pred])
    return len(_topo_clusters(clusters, preds)) == len(clusters)


def _topo_clusters(clusters: list[int],
                   cluster_preds: dict[int, set[int]]) -> list[int]:
    import heapq
    indegree = {c: len(p) for c, p in cluster_preds.items()}
    succs: dict[int, list[int]] = {c: [] for c in clusters}
    for cluster, preds in cluster_preds.items():
        for pred in preds:
            succs[pred].append(cluster)
    ready = [c for c in clusters if indegree[c] == 0]
    heapq.heapify(ready)
    order = []
    while ready:
        cluster = heapq.heappop(ready)
        order.append(cluster)
        for successor in succs[cluster]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                heapq.heappush(ready, successor)
    return order
