"""Operation-level list scheduling (classic HLS baseline).

Schedules the *unclustered* task graph onto ``n_alus`` single-operation
ALUs, one operation per cycle, with idealised operand delivery (any
result is usable the next cycle, memory traffic is free).  Priority is
the standard critical-path heuristic (longest path to a sink first).

This gives the strongest possible comparison point for compute cycles:
whatever the three-phase mapper achieves must be judged against what
plain list scheduling would do on the same five ALUs *without* the
FPFA's multi-operation data-paths or any staging constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.taskgraph import TaskGraph


@dataclass
class ListScheduleResult:
    """Outcome of list scheduling one task graph."""

    #: cycles[t] = task ids issued in cycle t.
    cycles: list[list[int]] = field(default_factory=list)
    #: task id -> issue cycle.
    issue_cycle: dict[int, int] = field(default_factory=dict)
    critical_path: int = 0

    @property
    def n_cycles(self) -> int:
        return len(self.cycles)

    def utilisation(self, n_alus: int) -> float:
        if not self.cycles:
            return 0.0
        issued = sum(len(cycle) for cycle in self.cycles)
        return issued / (n_alus * len(self.cycles))


def list_schedule(taskgraph: TaskGraph, n_alus: int = 5
                  ) -> ListScheduleResult:
    """Critical-path list scheduling of individual operations."""
    order = taskgraph.topo_order()
    consumers = taskgraph.consumers()

    # Height = longest path to any sink (priority, larger first).
    height: dict[int, int] = {}
    for task in reversed(order):
        succ_heights = [height[c] for c in consumers[task.id]]
        height[task.id] = 1 + (max(succ_heights) if succ_heights else 0)

    result = ListScheduleResult(
        critical_path=max(height.values(), default=0))
    pending = {task.id: len(set(task.predecessor_ids()))
               for task in order}
    ready = sorted((task.id for task in order if pending[task.id] == 0),
                   key=lambda tid: (-height[tid], tid))
    cycle = 0
    scheduled: set[int] = set()
    while ready or len(scheduled) < taskgraph.n_tasks:
        issue = ready[:n_alus]
        ready = ready[n_alus:]
        result.cycles.append(issue)
        newly_ready: list[int] = []
        for task_id in issue:
            scheduled.add(task_id)
            result.issue_cycle[task_id] = cycle
            for consumer in set(consumers[task_id]):
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    newly_ready.append(consumer)
        ready = sorted(ready + newly_ready,
                       key=lambda tid: (-height[tid], tid))
        cycle += 1
        if cycle > 4 * (taskgraph.n_tasks + 1):
            raise RuntimeError("list scheduler failed to make progress")
    return result
