"""Memory-only operand staging: the locality ablation baseline.

The paper claims low power comes from *locality of reference*
(§VI-C/§VII).  This baseline runs the identical clustering and
scheduling but cripples the allocator's locality features:

* no register **reuse** — an operand already sitting in the right
  bank is reloaded from memory anyway;
* no direct **write-back** — a producing ALU never latches its result
  into a consumer's register; every value goes through a memory.

Every operand therefore costs a memory read plus a crossbar transfer,
and dependent levels need extra stall cycles (a result is only
loadable the cycle after it was stored).  Comparing energy reports of
the two allocations quantifies the locality claim (experiment EXT-C).
"""

from __future__ import annotations

from repro.arch.params import TileParams
from repro.arch.templates import TemplateLibrary
from repro.core.pipeline import MappingReport, map_source


def naive_options() -> dict:
    """Allocator options that disable all locality features."""
    return {"enable_bypass": False, "enable_reuse": False}


def map_source_naive(source: str, params: TileParams | None = None,
                     library: TemplateLibrary | None = None,
                     **kwargs) -> MappingReport:
    """Map C source with the memory-only staging allocator."""
    options = dict(kwargs)
    options.update(naive_options())
    return map_source(source, params, library, **options)
