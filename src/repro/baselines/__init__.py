"""Comparator algorithms for the evaluation harness.

The paper positions its three-phase decomposition against classic
multiprocessor scheduling:

* :mod:`repro.baselines.list_scheduler` — resource-constrained list
  scheduling of individual operations (no clustering, idealised
  operand delivery): the classical HLS baseline and a lower bound on
  compute cycles for a 5-ALU tile with single-op ALUs;
* :mod:`repro.baselines.sarkar` — Sarkar's original two-phase
  internalization clustering followed by cluster list scheduling, the
  method §VI explicitly extends;
* :mod:`repro.baselines.naive_alloc` — the Fig. 5 allocator with
  locality features disabled (no register reuse, no direct
  write-back): isolates the paper's locality-of-reference claim.
"""

from repro.baselines.list_scheduler import (
    ListScheduleResult,
    list_schedule,
)
from repro.baselines.sarkar import SarkarResult, sarkar_cluster_and_schedule
from repro.baselines.naive_alloc import map_source_naive, naive_options

__all__ = [
    "ListScheduleResult",
    "SarkarResult",
    "list_schedule",
    "map_source_naive",
    "naive_options",
    "sarkar_cluster_and_schedule",
]
