"""The statespace: the paper's abstraction of the C memory model (§IV).

    "The statespace is a set of tuples: {(ad, da), (ad, da), ...}.
     A tuple consists of an ad field, which represents the address,
     and a da field which represents the data at that address.  This
     data can be anything, including a tuple of this type again."

Interaction happens exclusively through the three primitive operations
of paper Fig. 2:

* ``ST`` (store)  — ``(state, ad, da) -> state'``
* ``FE`` (fetch)  — ``(state, ad) -> da``
* ``DEL`` (delete)— ``(state, ad) -> state'``

:class:`StateSpace` here is a persistent (functional) mapping: ``store``
and ``delete`` return a *new* statespace, leaving the original intact.
This matches the dataflow reading of Fig. 2 — each primitive consumes an
``ss_in`` edge and produces an ``ss_out`` edge — and makes speculative
evaluation (both arms of a statespace MUX) trivially safe.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.cdfg.ops import Address


class MissingAddressError(KeyError):
    """Raised by strict fetches of an address with no stored tuple."""

    def __init__(self, address: Address):
        self.address = address
        super().__init__(str(address))

    def __str__(self) -> str:
        return f"no tuple with address {self.address} in the statespace"


class StateSpace:
    """An immutable set of (ad, da) tuples keyed by address.

    Parameters
    ----------
    tuples:
        Initial contents, mapping :class:`Address` (or plain name
        strings, promoted to scalar addresses) to data.  Data can be
        anything — including another :class:`StateSpace`, as §IV allows.
    """

    __slots__ = ("_tuples",)

    def __init__(self, tuples: Mapping[Address | str, Any] | None = None):
        normalised: dict[Address, Any] = {}
        if tuples:
            for address, data in tuples.items():
                normalised[self._as_address(address)] = data
        self._tuples = normalised

    @staticmethod
    def _as_address(address: Address | str) -> Address:
        if isinstance(address, Address):
            return address
        if isinstance(address, str):
            return Address(address)
        raise TypeError(f"not an address: {address!r}")

    # -- the three primitives (paper Fig. 2) -------------------------

    def store(self, address: Address | str, data: Any) -> "StateSpace":
        """``ST``: return a statespace with (ad, da) added/replaced."""
        address = self._as_address(address)
        fresh = StateSpace()
        fresh._tuples = dict(self._tuples)
        fresh._tuples[address] = data
        return fresh

    def fetch(self, address: Address | str, *, strict: bool = False,
              default: Any = 0) -> Any:
        """``FE``: read the data stored at *address*.

        Fetching an address that holds no tuple returns *default* (0)
        unless ``strict=True``, in which case it raises
        :class:`MissingAddressError`.  The paper leaves this case
        undefined; totalising it keeps speculative evaluation safe and
        mirrors zero-initialised memories in the simulator.
        """
        address = self._as_address(address)
        if address in self._tuples:
            return self._tuples[address]
        if strict:
            raise MissingAddressError(address)
        return default

    def delete(self, address: Address | str) -> "StateSpace":
        """``DEL``: return a statespace without the tuple at *address*."""
        address = self._as_address(address)
        fresh = StateSpace()
        fresh._tuples = dict(self._tuples)
        fresh._tuples.pop(address, None)
        return fresh

    # -- conveniences -------------------------------------------------

    def store_array(self, name: str, values) -> "StateSpace":
        """Store ``values[i]`` at ``Address(name, i)`` for each i."""
        fresh = StateSpace()
        fresh._tuples = dict(self._tuples)
        for offset, value in enumerate(values):
            fresh._tuples[Address(name, offset)] = value
        return fresh

    def fetch_array(self, name: str, length: int) -> list:
        """Read ``length`` consecutive words of array *name*."""
        return [self.fetch(Address(name, offset))
                for offset in range(length)]

    def __contains__(self, address) -> bool:
        return self._as_address(address) in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Address]:
        return iter(sorted(self._tuples))

    def items(self) -> Iterator[tuple[Address, Any]]:
        """Iterate (ad, da) tuples in sorted address order."""
        for address in sorted(self._tuples):
            yield address, self._tuples[address]

    def as_dict(self) -> dict[Address, Any]:
        """A plain-dict snapshot of the tuple set."""
        return dict(self._tuples)

    def _nonzero_tuples(self) -> dict[Address, Any]:
        return {address: data for address, data in self._tuples.items()
                if not (isinstance(data, int) and data == 0)}

    def __eq__(self, other) -> bool:
        """Observational equality: statespaces are compared as *total*
        functions from addresses to data with default 0.

        A tuple holding 0 is indistinguishable from an absent tuple
        under the totalised ``fetch`` semantics (and from a real
        memory word, which always holds something), so ``ST(ad, 0)``
        and ``DEL(ad)`` yield equal statespaces.  Transformations such
        as store predication rely on this.  Use :meth:`same_tuples`
        for exact sparse-representation comparison.
        """
        if not isinstance(other, StateSpace):
            return NotImplemented
        return self._nonzero_tuples() == other._nonzero_tuples()

    def same_tuples(self, other: "StateSpace") -> bool:
        """Exact tuple-set equality (distinguishes 0 from absent)."""
        return self._tuples == other._tuples

    def __hash__(self):  # pragma: no cover - explicit unhashability
        raise TypeError("StateSpace is unhashable; compare with ==")

    def __repr__(self) -> str:
        rendered = ", ".join(f"({address}, {data!r})"
                             for address, data in self.items())
        return f"StateSpace({{{rendered}}})"
