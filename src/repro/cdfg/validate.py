"""Structural validation of CDFGs.

Checks the invariants every phase relies on:

* all input references point at existing nodes/outputs;
* the graph (outside compound bodies) is acyclic;
* port types line up (state goes into state ports, addresses into
  address ports, ...);
* statespace plumbing: at most one SS_IN / SS_OUT, and only in the
  top-level graph — compound bodies thread state through their slots;
* compound nodes' slot conventions hold (LOOP carried names match the
  body's INPUT/OUTPUT slots plus the condition; BRANCH arms map
  live-ins to live-outs).

``validate`` raises :class:`ValidationError` with a precise message;
it returns the graph so calls can be chained.
"""

from __future__ import annotations

from repro.cdfg.graph import COND_SLOT, Graph, GraphError, Node, ValueRef
from repro.cdfg.ops import Address, OpKind, PortType, signature
from repro.cdfg.builder import STATE_NAME


class ValidationError(Exception):
    """Raised when a CDFG violates a structural invariant."""


def _output_type(graph: Graph, ref: ValueRef,
                 cache: dict[ValueRef, PortType]) -> PortType:
    """Infer the port type carried by *ref* (memoised)."""
    if ref in cache:
        return cache[ref]
    node = graph.node(ref[0])
    kind = node.kind
    result: PortType
    sig = signature(kind)
    if sig is not None:
        result = sig[1][ref[1]]
    elif kind is OpKind.INPUT:
        result = (PortType.STATE if node.value == STATE_NAME
                  else PortType.VALUE)
    elif kind is OpKind.MUX:
        # Polymorphic select: type = join of the two data inputs.
        cache[ref] = PortType.VALUE  # breaks cycles defensively
        t_true = _output_type(graph, node.inputs[1], cache)
        t_false = _output_type(graph, node.inputs[2], cache)
        if t_true is not t_false:
            raise ValidationError(
                f"MUX node {node.id} selects between {t_true.value} and "
                f"{t_false.value}")
        result = t_true
    elif kind is OpKind.LOOP:
        names = node.value
        result = (PortType.STATE if names[ref[1]] == STATE_NAME
                  else PortType.VALUE)
    elif kind is OpKind.BRANCH:
        __, live_outs = node.value
        result = (PortType.STATE if live_outs[ref[1]] == STATE_NAME
                  else PortType.VALUE)
    else:  # pragma: no cover - defensive
        raise ValidationError(f"cannot type outputs of {kind}")
    cache[ref] = result
    return result


def _check_node_arity(node: Node) -> None:
    sig = signature(node.kind)
    if sig is not None:
        expected_in, expected_out = sig
        if len(node.inputs) != len(expected_in):
            raise ValidationError(
                f"node {node.id} ({node.kind}) has {len(node.inputs)} "
                f"inputs, expected {len(expected_in)}")
        if node.n_outputs != len(expected_out):
            raise ValidationError(
                f"node {node.id} ({node.kind}) declares "
                f"{node.n_outputs} outputs, expected {len(expected_out)}")
        return
    if node.kind is OpKind.MUX and len(node.inputs) != 3:
        raise ValidationError(
            f"MUX node {node.id} has {len(node.inputs)} inputs, "
            f"expected 3")
    if node.kind is OpKind.INPUT and node.inputs:
        raise ValidationError(f"INPUT node {node.id} must have no inputs")
    if node.kind is OpKind.OUTPUT and len(node.inputs) != 1:
        raise ValidationError(
            f"OUTPUT node {node.id} must have exactly one input")


def _check_payloads(node: Node) -> None:
    if node.kind is OpKind.CONST and not isinstance(node.value, int):
        raise ValidationError(
            f"CONST node {node.id} carries {node.value!r}, not an int")
    if node.kind is OpKind.ADDR and not isinstance(node.value, Address):
        raise ValidationError(
            f"ADDR node {node.id} carries {node.value!r}, not an Address")


def _check_loop(graph: Graph, node: Node) -> None:
    if len(node.bodies) != 1:
        raise ValidationError(
            f"LOOP node {node.id} must have exactly one body")
    names = node.value
    if not isinstance(names, tuple):
        raise ValidationError(
            f"LOOP node {node.id} value must be the carried-name tuple")
    if len(node.inputs) != len(names) or node.n_outputs != len(names):
        raise ValidationError(
            f"LOOP node {node.id} carries {len(names)} values but has "
            f"{len(node.inputs)} inputs / {node.n_outputs} outputs")
    body = node.bodies[0]
    input_slots = set(Graph.body_inputs(body))
    output_slots = set(Graph.body_outputs(body))
    if not input_slots <= set(names):
        raise ValidationError(
            f"LOOP node {node.id} body reads slots "
            f"{sorted(input_slots - set(names), key=str)} that are not "
            f"carried")
    expected_outputs = set(names) | {COND_SLOT}
    if output_slots != expected_outputs:
        raise ValidationError(
            f"LOOP node {node.id} body outputs {sorted(output_slots, key=str)}"
            f", expected {sorted(expected_outputs, key=str)}")
    validate(body, top_level=False)


def _check_branch(graph: Graph, node: Node) -> None:
    if len(node.bodies) != 2:
        raise ValidationError(
            f"BRANCH node {node.id} must have exactly two bodies")
    live_ins, live_outs = node.value
    if len(node.inputs) != 1 + len(live_ins):
        raise ValidationError(
            f"BRANCH node {node.id} has {len(node.inputs)} inputs, "
            f"expected cond + {len(live_ins)} live-ins")
    if node.n_outputs != len(live_outs):
        raise ValidationError(
            f"BRANCH node {node.id} has {node.n_outputs} outputs, "
            f"expected {len(live_outs)} live-outs")
    for body in node.bodies:
        input_slots = set(Graph.body_inputs(body))
        output_slots = set(Graph.body_outputs(body))
        if not input_slots <= set(live_ins):
            raise ValidationError(
                f"BRANCH node {node.id} arm {body.name!r} reads slots "
                f"{sorted(input_slots - set(live_ins), key=str)} that are "
                f"not live-in")
        if output_slots != set(live_outs):
            raise ValidationError(
                f"BRANCH node {node.id} arm {body.name!r} outputs "
                f"{sorted(output_slots, key=str)}, expected "
                f"{sorted(set(live_outs), key=str)}")
        validate(body, top_level=False)


def validate(graph: Graph, *, top_level: bool = True) -> Graph:
    """Check all structural invariants; raise or return *graph*."""
    # The incremental use/def index must agree with a from-scratch
    # scan (bodies are covered by their own validate() call below).
    try:
        graph.check_index(recursive=False)
    except GraphError as error:
        raise ValidationError(str(error)) from None
    # References and acyclicity.
    for node in graph.sorted_nodes():
        for ref in node.inputs:
            if ref[0] not in graph.nodes:
                raise ValidationError(
                    f"node {node.id} reads unknown node {ref[0]}")
            producer = graph.node(ref[0])
            if not 0 <= ref[1] < producer.n_outputs:
                raise ValidationError(
                    f"node {node.id} reads output {ref[1]} of node "
                    f"{producer.id}, which has {producer.n_outputs}")
    try:
        graph.topo_order()
    except GraphError as error:
        raise ValidationError(str(error)) from None

    # Statespace plumbing.
    ss_in_count = len(graph.find(OpKind.SS_IN))
    ss_out_count = len(graph.find(OpKind.SS_OUT))
    if top_level:
        if ss_in_count > 1 or ss_out_count > 1:
            raise ValidationError(
                f"expected at most one SS_IN/SS_OUT, found "
                f"{ss_in_count}/{ss_out_count}")
    elif ss_in_count or ss_out_count:
        raise ValidationError(
            "compound bodies must thread state through slots, not "
            "SS_IN/SS_OUT nodes")

    # Node-local checks, then typing.
    type_cache: dict[ValueRef, PortType] = {}
    for node in graph.sorted_nodes():
        _check_node_arity(node)
        _check_payloads(node)
        if node.kind is OpKind.LOOP:
            _check_loop(graph, node)
        elif node.kind is OpKind.BRANCH:
            _check_branch(graph, node)
        sig = signature(node.kind)
        if sig is not None:
            for slot, (ref, expected) in enumerate(zip(node.inputs,
                                                       sig[0])):
                actual = _output_type(graph, ref, type_cache)
                if actual is not expected:
                    raise ValidationError(
                        f"node {node.id} ({node.kind}) input {slot} is "
                        f"{actual.value}, expected {expected.value}")
        elif node.kind is OpKind.BRANCH:
            cond_type = _output_type(graph, node.inputs[0], type_cache)
            if cond_type is not PortType.VALUE:
                raise ValidationError(
                    f"BRANCH node {node.id} condition is "
                    f"{cond_type.value}, expected value")
        elif node.kind is OpKind.MUX:
            # Force the select-type join even when nothing consumes it.
            _output_type(graph, node.out(), type_cache)
    return graph
