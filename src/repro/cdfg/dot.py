"""Graphviz (DOT) export of CDFGs.

Renders graphs in the visual style of the paper's figures: operation
nodes as boxes labelled with the C operator, statespace primitives
(ST/FE/DEL) highlighted, state edges drawn dashed, and compound
LOOP/BRANCH nodes as clustered sub-graphs.
"""

from __future__ import annotations

from repro.cdfg.graph import Graph, Node
from repro.cdfg.ops import OpKind, PortType, signature

_STATE_STYLE = ' style=dashed color="#3366aa"'
_PRIMITIVE_COLOR = "#ffdd99"
_CONST_COLOR = "#e8e8e8"
_COMPOUND_COLOR = "#ddeeff"


def _node_label(node: Node) -> str:
    label = node.describe()
    return label.replace('"', '\\"')


def _node_attrs(node: Node) -> str:
    if node.kind in (OpKind.ST, OpKind.FE, OpKind.DEL):
        return f'shape=box style=filled fillcolor="{_PRIMITIVE_COLOR}"'
    if node.kind in (OpKind.CONST, OpKind.ADDR):
        return f'shape=ellipse style=filled fillcolor="{_CONST_COLOR}"'
    if node.kind in (OpKind.SS_IN, OpKind.SS_OUT):
        return "shape=plaintext"
    if node.kind in (OpKind.INPUT, OpKind.OUTPUT):
        return "shape=invhouse" if node.kind is OpKind.INPUT \
            else "shape=house"
    return "shape=box"


def _edge_is_state(graph: Graph, node: Node, slot: int) -> bool:
    sig = signature(node.kind)
    if sig is not None and slot < len(sig[0]):
        return sig[0][slot] is PortType.STATE
    return False


def _emit_graph(graph: Graph, lines: list[str], prefix: str) -> None:
    for node in graph.sorted_nodes():
        identity = f"{prefix}n{node.id}"
        if node.is_compound:
            lines.append(f'subgraph cluster_{identity} {{')
            lines.append(f'  label="{node.kind}" style=filled '
                         f'fillcolor="{_COMPOUND_COLOR}"')
            lines.append(f'  {identity} [label="{_node_label(node)}" '
                         f'shape=box]')
            for body_index, body in enumerate(node.bodies):
                lines.append(f'  subgraph cluster_{identity}_'
                             f'b{body_index} {{')
                lines.append(f'    label="{body.name}"')
                _emit_graph(body, lines,
                            prefix=f"{identity}_b{body_index}_")
                lines.append("  }")
            lines.append("}")
        else:
            lines.append(f'{identity} [label="{_node_label(node)}" '
                         f'{_node_attrs(node)}]')
    for node in graph.sorted_nodes():
        identity = f"{prefix}n{node.id}"
        for slot, ref in enumerate(node.inputs):
            source = f"{prefix}n{ref[0]}"
            style = _STATE_STYLE if _edge_is_state(graph, node, slot) \
                else ""
            lines.append(f"{source} -> {identity} [{style.strip()}]"
                         if style else f"{source} -> {identity}")


def to_dot(graph: Graph, title: str | None = None) -> str:
    """Render *graph* as Graphviz DOT text."""
    lines = [f'digraph "{title or graph.name}" {{',
             "rankdir=TB", 'node [fontname="Helvetica"]']
    _emit_graph(graph, lines, prefix="")
    lines.append("}")
    return "\n".join(lines)
