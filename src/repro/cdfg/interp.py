"""Reference interpreter for CDFGs.

This is the semantic ground truth of the whole reproduction: every
transformation pass and the complete mapping flow are tested by
checking that the final statespace they produce equals the one this
interpreter computes on the original graph.

Values flowing along edges are Python ints (VALUE), :class:`Address`
(ADDRESS) or :class:`StateSpace` (STATE).  Compound ``LOOP``/``BRANCH``
nodes are executed recursively; an iteration limit guards against
non-terminating loops in generated tests.

An optional *width* wraps every scalar result to a two's-complement
width (the FPFA data-path is 16-bit wide); by default arithmetic is
unbounded, which is what the algebraic transformations assume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cdfg.graph import COND_SLOT, Graph, Node
from repro.cdfg.ops import Address, OpKind, eval_op, wrap_value
from repro.cdfg.statespace import StateSpace


class InterpreterError(Exception):
    """Raised on semantic errors during CDFG execution."""


@dataclass
class RunResult:
    """The observable outcome of executing a CDFG."""

    state: StateSpace
    outputs: dict[Any, Any] = field(default_factory=dict)

    def fetch(self, address: Address | str, **kwargs) -> Any:
        """Convenience: read the final statespace."""
        return self.state.fetch(address, **kwargs)


_wrap = wrap_value


class Interpreter:
    """Executes CDFGs produced by :mod:`repro.cdfg.builder`."""

    def __init__(self, *, max_iterations: int = 1_000_000,
                 width: int | None = None, strict_fetch: bool = False):
        self.max_iterations = max_iterations
        self.width = width
        self.strict_fetch = strict_fetch

    # -- public --------------------------------------------------------

    def run(self, graph: Graph, initial_state: StateSpace | None = None,
            inputs: Mapping[str, int] | None = None) -> RunResult:
        """Execute *graph* and return its final state and outputs."""
        env: dict[Any, Any] = {}
        if inputs:
            env.update(inputs)
        values = self._eval_graph(graph, env,
                                  initial_state or StateSpace())
        result = RunResult(state=initial_state or StateSpace())
        for node in graph.sorted_nodes():
            if node.kind is OpKind.SS_OUT:
                result.state = values[node.inputs[0]]
            elif node.kind is OpKind.OUTPUT:
                result.outputs[node.value] = values[node.inputs[0]]
        return result

    # -- internals -------------------------------------------------------

    def _eval_graph(self, graph: Graph, input_env: Mapping[Any, Any],
                    initial_state: StateSpace) -> dict:
        """Evaluate every node; return the map ref -> value."""
        values: dict[tuple[int, int], Any] = {}
        for node in graph.topo_order():
            self._eval_node(graph, node, values, input_env, initial_state)
        return values

    def _eval_node(self, graph: Graph, node: Node, values: dict,
                   input_env: Mapping[Any, Any],
                   initial_state: StateSpace) -> None:
        kind = node.kind
        operands = [values[ref] for ref in node.inputs]
        if kind is OpKind.CONST:
            values[node.out()] = _wrap(node.value, self.width)
        elif kind is OpKind.ADDR:
            values[node.out()] = node.value
        elif kind is OpKind.SS_IN:
            values[node.out()] = initial_state
        elif kind in (OpKind.SS_OUT, OpKind.OUTPUT):
            pass  # roots; collected by run()
        elif kind is OpKind.INPUT:
            if node.value not in input_env:
                raise InterpreterError(
                    f"no value supplied for input {node.value!r}")
            values[node.out()] = input_env[node.value]
        elif kind is OpKind.ST:
            state, address, data = operands
            self._expect_state(state, node)
            values[node.out()] = state.store(self._as_address(address,
                                                              node), data)
        elif kind is OpKind.FE:
            state, address = operands
            self._expect_state(state, node)
            values[node.out()] = state.fetch(
                self._as_address(address, node), strict=self.strict_fetch)
        elif kind is OpKind.DEL:
            state, address = operands
            self._expect_state(state, node)
            values[node.out()] = state.delete(self._as_address(address,
                                                               node))
        elif kind is OpKind.ADDR_ADD:
            address, offset = operands
            values[node.out()] = self._as_address(address,
                                                  node).shifted(offset)
        elif kind is OpKind.LOOP:
            self._eval_loop(node, operands, values)
        elif kind is OpKind.BRANCH:
            self._eval_branch(node, operands, values)
        elif kind is OpKind.MUX:
            cond, if_true, if_false = operands
            values[node.out()] = if_true if cond != 0 else if_false
        else:
            try:
                result = eval_op(kind, *operands)
            except ValueError as error:
                raise InterpreterError(str(error)) from None
            except TypeError:
                raise InterpreterError(
                    f"bad operand types for {kind} at node {node.id}: "
                    f"{operands!r}") from None
            values[node.out()] = _wrap(result, self.width)

    def _eval_body(self, body: Graph, env: Mapping[Any, Any]) -> dict:
        """Run a compound body; return its OUTPUT slot -> value map."""
        values = self._eval_graph(body, env, StateSpace())
        outputs: dict[Any, Any] = {}
        for node in body.sorted_nodes():
            if node.kind is OpKind.OUTPUT:
                outputs[node.value] = values[node.inputs[0]]
        return outputs

    def _eval_loop(self, node: Node, operands: list, values: dict) -> None:
        names = node.value
        body = node.bodies[0]
        carried = dict(zip(names, operands))
        for _ in range(self.max_iterations):
            outputs = self._eval_body(body, carried)
            if COND_SLOT not in outputs:
                raise InterpreterError(
                    f"LOOP node {node.id} body has no condition output")
            if outputs[COND_SLOT] == 0:
                break
            carried = {name: outputs[name] for name in names}
        else:
            raise InterpreterError(
                f"LOOP node {node.id} exceeded "
                f"{self.max_iterations} iterations")
        for index, name in enumerate(names):
            values[node.out(index)] = carried[name]

    def _eval_branch(self, node: Node, operands: list,
                     values: dict) -> None:
        live_ins, live_outs = node.value
        cond = operands[0]
        env = dict(zip(live_ins, operands[1:]))
        body = node.bodies[0] if cond != 0 else node.bodies[1]
        outputs = self._eval_body(body, env)
        for index, name in enumerate(live_outs):
            if name not in outputs:
                raise InterpreterError(
                    f"BRANCH node {node.id} arm is missing output "
                    f"{name!r}")
            values[node.out(index)] = outputs[name]

    @staticmethod
    def _expect_state(value, node: Node) -> None:
        if not isinstance(value, StateSpace):
            raise InterpreterError(
                f"node {node.id} ({node.kind}) expected a statespace, "
                f"got {type(value).__name__}")

    @staticmethod
    def _as_address(value, node: Node) -> Address:
        if isinstance(value, Address):
            return value
        raise InterpreterError(
            f"node {node.id} ({node.kind}) expected an address, "
            f"got {type(value).__name__}")


def run_graph(graph: Graph, initial_state: StateSpace | None = None,
              inputs: Mapping[str, int] | None = None,
              **interp_kwargs) -> RunResult:
    """Execute *graph*; see :class:`Interpreter` for keyword options."""
    return Interpreter(**interp_kwargs).run(graph, initial_state, inputs)


def run_main(source: str, initial_state: StateSpace | None = None,
             **interp_kwargs) -> RunResult:
    """Build the CDFG of C *source*'s main and execute it."""
    from repro.cdfg.builder import build_main_cdfg
    graph = build_main_cdfg(source)
    return run_graph(graph, initial_state, **interp_kwargs)
