"""The CDFG graph data structure.

A :class:`Graph` is a set of :class:`Node` objects connected by value
references.  A :class:`ValueRef` names one output of one node as the
pair ``(node_id, output_index)``; node inputs are ordered lists of such
references, which encodes the hyperedges of the paper's hypergraph
model (one producer output fanning out to many consumer ports is one
hyperedge).

Compound control (paper §III: "control information ... which in turn
control the iteration and selection statements") is represented by
``LOOP`` and ``BRANCH`` nodes carrying nested sub-graphs:

* A ``LOOP`` node has ``k`` inputs (initial values of the loop-carried
  variables) and ``k`` outputs (their final values).  Its single body
  graph uses ``INPUT`` nodes with slots ``0..k-1`` for the current
  carried values, an ``OUTPUT`` node with slot ``COND_SLOT`` for the
  continue-condition, and ``OUTPUT`` nodes with slots ``0..k-1`` for
  the next-iteration values.
* A ``BRANCH`` node has ``1 + k`` inputs (condition plus live-ins) and
  ``k`` outputs (merged live-outs).  Each of its two bodies maps INPUT
  slots ``0..k-1`` to OUTPUT slots ``0..k-1``.

The statespace, when touched inside a loop/branch, is threaded through
as just another carried value — its port type is STATE.

Incremental analyses
--------------------
The graph maintains a *versioned* use/def index alongside the node
table: every structural mutation (``add``, ``remove``, ``remove_dead``,
``replace_uses``, ``set_input``, ``set_inputs``, ``splice``) updates a
reverse-adjacency map (``ref -> {(consumer_id, slot)}``) and a per-kind
id set, and bumps :attr:`version`.  ``uses()`` / ``users_of()`` /
``find()`` / ``counts()`` are then O(fan-out) lookups instead of whole
graph rescans, and ``topo_order()`` / ``sorted_nodes()`` memoise their
result against the current version, so the common
analyse-mutate-reanalyse loops of the transform passes stop being
quadratic in graph size.

Mutating ``node.inputs`` directly bypasses the index; rewiring must go
through :meth:`Graph.set_input` / :meth:`Graph.set_inputs` (or
``replace_uses``).  :meth:`check_index` compares the incremental index
against a from-scratch recomputation and is wired into
:func:`repro.cdfg.validate.validate`, and the hypothesis property
tests drive it across randomized transform sequences.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.cdfg.ops import Address, OpKind, PortType, signature

#: One output of one node: (node id, output index).
ValueRef = tuple[int, int]

#: OUTPUT slot used for a LOOP body's continue-condition.
COND_SLOT = "cond"


class GraphError(Exception):
    """Raised on malformed graph manipulation."""


@dataclass
class Node:
    """One operation in a CDFG.

    Attributes
    ----------
    id:
        Unique (per graph) integer identity.
    kind:
        The operation.
    inputs:
        Ordered input references.  Treat as read-only outside
        :class:`Graph`; rewire through :meth:`Graph.set_input` /
        :meth:`Graph.set_inputs` so the use index stays current.
    value:
        Payload: ``int`` for CONST, :class:`Address` for ADDR, a slot
        index or :data:`COND_SLOT` for INPUT/OUTPUT nodes.
    name:
        Optional human-readable label (variable name etc.).
    bodies:
        Nested sub-graphs: ``(body,)`` for LOOP and
        ``(then_body, else_body)`` for BRANCH; empty otherwise.
    n_outputs:
        Number of output ports.
    """

    id: int
    kind: OpKind
    inputs: list[ValueRef] = field(default_factory=list)
    value: Any = None
    name: str | None = None
    bodies: tuple["Graph", ...] = ()
    n_outputs: int = 1

    def out(self, index: int = 0) -> ValueRef:
        """The reference naming this node's *index*-th output."""
        if not 0 <= index < self.n_outputs:
            raise GraphError(
                f"node {self.id} ({self.kind}) has {self.n_outputs} "
                f"output(s); no output {index}")
        return (self.id, index)

    @property
    def is_compound(self) -> bool:
        return self.kind in (OpKind.LOOP, OpKind.BRANCH)

    def describe(self) -> str:
        """Short human-readable description used in errors and DOT."""
        if self.kind is OpKind.CONST:
            return str(self.value)
        if self.kind is OpKind.ADDR:
            return f"&{self.value}"
        label = str(self.kind)
        if self.name:
            label += f" {self.name}"
        return label

    def __repr__(self) -> str:
        return f"<Node {self.id} {self.describe()}>"


class UsesView(Mapping):
    """Live, deterministic mapping view over a graph's use index.

    Behaves like the dict ``uses()`` historically returned —
    ``view[ref]`` is the list of ``(consumer_id, slot)`` pairs in
    ascending order, refs with no consumers are absent — but reads
    straight from the incremental index, so it is always current and
    each lookup costs O(fan-out log fan-out) instead of a full-graph
    rescan.

    Per-ref lookups (``get``/``[]``/``in``) are always mutation-safe.
    Iteration (``items()``/``values()``/``iter``) walks a snapshot of
    the refs and silently skips any whose uses vanish mid-iteration,
    so rewiring the graph while iterating never raises.
    """

    __slots__ = ("_graph",)

    def __init__(self, graph: "Graph"):
        self._graph = graph

    def get(self, ref, default=None):
        users = self._graph._users.get(ref)
        return sorted(users) if users else default

    def __getitem__(self, ref) -> list[tuple[int, int]]:
        users = self._graph._users.get(ref)
        if not users:
            raise KeyError(ref)
        return sorted(users)

    def __contains__(self, ref) -> bool:
        return bool(self._graph._users.get(ref))

    def __iter__(self):
        return iter(sorted(self._graph._users))

    def items(self):
        for ref in sorted(self._graph._users):
            users = self._graph._users.get(ref)
            if users:
                yield ref, sorted(users)

    def values(self):
        for __, consumers in self.items():
            yield consumers

    def __len__(self) -> int:
        return len(self._graph._users)

    def __repr__(self) -> str:
        return f"<UsesView of {self._graph!r}>"


class Graph:
    """A mutable CDFG.

    Nodes are created with :meth:`add` (or one of the typed helpers)
    and wired by passing producer references as inputs.  The graph
    offers the navigation and surgery primitives that the transform
    passes and the mapper rely on: topological iteration, use lists,
    use replacement, dead-node removal and deep cloning — all backed
    by the incremental versioned index described in the module
    docstring.
    """

    def __init__(self, name: str = "cdfg"):
        self.name = name
        self.nodes: dict[int, Node] = {}
        self._ids = itertools.count(0)
        #: ref -> {(consumer_id, slot)} — incremental reverse adjacency.
        self._users: dict[ValueRef, set[tuple[int, int]]] = {}
        #: kind -> {node ids} — incremental kind partition.
        self._kind_ids: dict[OpKind, set[int]] = {}
        #: Bumped on every structural mutation; memoised analyses key
        #: their cache on it.
        self._version = 0
        self._topo_cache: tuple[int, list[Node]] | None = None
        self._sorted_cache: tuple[int, list[Node]] | None = None

    # -- index maintenance -------------------------------------------

    @property
    def version(self) -> int:
        """Monotone structural-mutation counter."""
        return self._version

    def _touch(self) -> None:
        self._version += 1

    def _index_added(self, node: Node) -> None:
        self._kind_ids.setdefault(node.kind, set()).add(node.id)
        for slot, ref in enumerate(node.inputs):
            self._users.setdefault(ref, set()).add((node.id, slot))
        self._touch()

    def _index_removed(self, node: Node) -> None:
        kind_ids = self._kind_ids.get(node.kind)
        if kind_ids is not None:
            kind_ids.discard(node.id)
            if not kind_ids:
                del self._kind_ids[node.kind]
        for slot, ref in enumerate(node.inputs):
            self._drop_use(ref, node.id, slot)
        self._touch()

    def _drop_use(self, ref: ValueRef, consumer_id: int,
                  slot: int) -> None:
        users = self._users.get(ref)
        if users is not None:
            users.discard((consumer_id, slot))
            if not users:
                del self._users[ref]

    def _rebuild_index(self) -> None:
        """Recompute the whole index from the node table (used by
        clone/unpickle, and by :meth:`check_index` as the oracle)."""
        self._users = {}
        self._kind_ids = {}
        for node in self.nodes.values():
            self._kind_ids.setdefault(node.kind, set()).add(node.id)
            for slot, ref in enumerate(node.inputs):
                self._users.setdefault(ref, set()).add((node.id, slot))
        self._topo_cache = None
        self._sorted_cache = None
        self._touch()

    def check_index(self, recursive: bool = True) -> None:
        """Verify the incremental index against a from-scratch scan.

        Raises :class:`GraphError` on any divergence — the symptom of
        a transform mutating ``node.inputs`` behind the graph's back.
        """
        fresh_users: dict[ValueRef, set[tuple[int, int]]] = {}
        fresh_kinds: dict[OpKind, set[int]] = {}
        for node in self.nodes.values():
            fresh_kinds.setdefault(node.kind, set()).add(node.id)
            for slot, ref in enumerate(node.inputs):
                fresh_users.setdefault(ref, set()).add((node.id, slot))
        if fresh_users != self._users:
            stale = set(self._users) ^ set(fresh_users)
            raise GraphError(
                f"use index out of date (refs {sorted(stale)} differ); "
                f"node.inputs was mutated directly — use "
                f"Graph.set_input/set_inputs")
        if fresh_kinds != self._kind_ids:
            raise GraphError("kind index out of date")
        if recursive:
            for node in self.nodes.values():
                for body in node.bodies:
                    body.check_index(recursive=True)

    # -- pickling -----------------------------------------------------
    #
    # Ships only the node table (the DSE runner sends compiled
    # frontend graphs to worker processes); the index and memoised
    # analyses are rebuilt on arrival, keeping the payload compact.

    def __getstate__(self) -> dict:
        return {"name": self.name, "nodes": self.nodes,
                "next_id": max(self.nodes, default=-1) + 1}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.nodes = state["nodes"]
        self._ids = itertools.count(state["next_id"])
        self._version = 0
        self._topo_cache = None
        self._sorted_cache = None
        self._rebuild_index()

    # -- construction -------------------------------------------------

    def add(self, kind: OpKind, inputs: Iterable[ValueRef] = (),
            value: Any = None, name: str | None = None,
            bodies: tuple["Graph", ...] = (),
            n_outputs: int | None = None) -> Node:
        """Create a node, wire its inputs, and return it."""
        inputs = list(inputs)
        for ref in inputs:
            self._check_ref(ref)
        if n_outputs is None:
            sig = signature(kind)
            n_outputs = len(sig[1]) if sig else 1
        node = Node(id=next(self._ids), kind=kind, inputs=inputs,
                    value=value, name=name, bodies=bodies,
                    n_outputs=n_outputs)
        self.nodes[node.id] = node
        self._index_added(node)
        return node

    def const(self, value: int) -> Node:
        """Add (or reuse nothing — always adds) an integer constant."""
        return self.add(OpKind.CONST, value=value)

    def addr(self, address: Address | str, offset: int = 0) -> Node:
        """Add a constant address node."""
        if isinstance(address, str):
            address = Address(address, offset)
        return self.add(OpKind.ADDR, value=address)

    def _check_ref(self, ref: ValueRef) -> None:
        node_id, out_index = ref
        if node_id not in self.nodes:
            raise GraphError(f"reference to unknown node {node_id}")
        producer = self.nodes[node_id]
        if not 0 <= out_index < producer.n_outputs:
            raise GraphError(
                f"node {node_id} ({producer.kind}) has no output "
                f"{out_index}")

    # -- lookup -------------------------------------------------------

    def node(self, node_id: int) -> Node:
        """Return the node with identity *node_id*."""
        return self.nodes[node_id]

    def producer(self, ref: ValueRef) -> Node:
        """The node producing reference *ref*."""
        return self.nodes[ref[0]]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(list(self.nodes.values()))

    def find(self, kind: OpKind) -> list[Node]:
        """All nodes of the given kind, in id order (O(matches))."""
        return [self.nodes[node_id]
                for node_id in sorted(self._kind_ids.get(kind, ()))]

    def sorted_nodes(self) -> list[Node]:
        """All nodes in ascending id order (deterministic).

        Memoised against :attr:`version`; do not mutate the returned
        list.  The list is a snapshot — iterating it while mutating
        the graph is safe.
        """
        cached = self._sorted_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        ordered = [self.nodes[node_id] for node_id in sorted(self.nodes)]
        self._sorted_cache = (self._version, ordered)
        return ordered

    def sole(self, kind: OpKind) -> Node:
        """The unique node of *kind* (GraphError if 0 or >1)."""
        found = self.find(kind)
        if len(found) != 1:
            raise GraphError(
                f"expected exactly one {kind} node, found {len(found)}")
        return found[0]

    def counts(self) -> dict[OpKind, int]:
        """Histogram of node kinds (used by the Fig. 3 experiment)."""
        return {kind: len(ids)
                for kind, ids in self._kind_ids.items() if ids}

    # -- uses ----------------------------------------------------------

    def uses(self) -> UsesView:
        """Map each referenced output to its consumers.

        Returns a live :class:`UsesView`:
        ``view[(producer_id, out_idx)]`` is
        ``[(consumer_id, in_slot), ...]`` in deterministic (id, slot)
        order.  The view always reflects the current graph — callers
        that mutate while iterating no longer need to re-request it.
        """
        return UsesView(self)

    def users_of(self, node_id: int) -> list[Node]:
        """Nodes consuming any output of *node_id* (deduplicated)."""
        node = self.nodes[node_id]
        seen = {consumer_id
                for index in range(node.n_outputs)
                for consumer_id, __ in self._users.get((node_id, index),
                                                       ())}
        return [self.nodes[consumer_id] for consumer_id in sorted(seen)]

    def replace_uses(self, old: ValueRef, new: ValueRef) -> int:
        """Rewire every input reading *old* to read *new*; return count.

        O(number of rewired inputs) via the use index.
        """
        if old == new:
            return 0
        self._check_ref(new)
        users = self._users.pop(old, None)
        if not users:
            return 0
        new_users = self._users.setdefault(new, set())
        for consumer_id, slot in users:
            self.nodes[consumer_id].inputs[slot] = new
            new_users.add((consumer_id, slot))
        self._touch()
        return len(users)

    def set_input(self, node: Node | int, slot: int,
                  ref: ValueRef) -> None:
        """Rewire one input of one node, keeping the index current.

        This is the supported way to mutate ``node.inputs[slot]``.
        """
        if isinstance(node, int):
            node = self.nodes[node]
        self._check_ref(ref)
        old = node.inputs[slot]
        if old == ref:
            return
        self._drop_use(old, node.id, slot)
        node.inputs[slot] = ref
        self._users.setdefault(ref, set()).add((node.id, slot))
        self._touch()

    def set_inputs(self, node: Node | int,
                   refs: Iterable[ValueRef]) -> None:
        """Replace a node's whole input list, keeping the index
        current (the supported way to write ``node.inputs = [...]``)."""
        if isinstance(node, int):
            node = self.nodes[node]
        refs = list(refs)
        for ref in refs:
            self._check_ref(ref)
        for slot, old in enumerate(node.inputs):
            self._drop_use(old, node.id, slot)
        node.inputs = refs
        for slot, ref in enumerate(refs):
            self._users.setdefault(ref, set()).add((node.id, slot))
        self._touch()

    def remove(self, node_id: int) -> None:
        """Remove a node; it must have no remaining users."""
        node = self.nodes[node_id]
        user_ids = sorted({consumer_id
                           for index in range(node.n_outputs)
                           for consumer_id, __ in self._users.get(
                               (node_id, index), ())})
        if user_ids:
            raise GraphError(
                f"cannot remove node {node_id}: still used by "
                f"{user_ids}")
        self._index_removed(node)
        del self.nodes[node_id]

    def remove_dead(self, keep: Iterable[int] = ()) -> int:
        """Remove all nodes not reachable (via inputs) from root nodes.

        Roots are OUTPUT / SS_OUT nodes plus anything listed in *keep*.
        Returns the number of removed nodes.
        """
        roots = set(self._kind_ids.get(OpKind.OUTPUT, ()))
        roots |= set(self._kind_ids.get(OpKind.SS_OUT, ()))
        roots.update(keep)
        live: set[int] = set()
        stack = list(roots)
        while stack:
            node_id = stack.pop()
            if node_id in live:
                continue
            live.add(node_id)
            for ref in self.nodes[node_id].inputs:
                stack.append(ref[0])
        dead = [node_id for node_id in self.nodes if node_id not in live]
        for node_id in dead:
            self._index_removed(self.nodes[node_id])
            del self.nodes[node_id]
        return len(dead)

    # -- ordering -------------------------------------------------------

    def topo_order(self) -> list[Node]:
        """Nodes in dependence order (inputs before users).

        Raises :class:`GraphError` on a cycle.  Ties are broken by node
        id so the order is deterministic.  Memoised against
        :attr:`version` — repeated calls between mutations are O(1);
        do not mutate the returned list.
        """
        cached = self._topo_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        version = self._version
        indegree: dict[int, int] = {node_id: 0 for node_id in self.nodes}
        consumers: dict[int, list[int]] = {n: [] for n in self.nodes}
        for node in self.nodes.values():
            unique_producers = {ref[0] for ref in node.inputs}
            indegree[node.id] = len(unique_producers)
            for producer_id in unique_producers:
                consumers[producer_id].append(node.id)
        import heapq
        ready = [node_id for node_id, degree in indegree.items()
                 if degree == 0]
        heapq.heapify(ready)
        order: list[Node] = []
        while ready:
            node_id = heapq.heappop(ready)
            order.append(self.nodes[node_id])
            for consumer_id in consumers[node_id]:
                indegree[consumer_id] -= 1
                if indegree[consumer_id] == 0:
                    heapq.heappush(ready, consumer_id)
        if len(order) != len(self.nodes):
            scheduled = {node.id for node in order}
            stuck = sorted(set(self.nodes) - scheduled)
            raise GraphError(f"cycle through nodes {stuck}")
        self._topo_cache = (version, order)
        return order

    def depth(self) -> int:
        """Length (in nodes) of the longest dependence chain."""
        longest: dict[int, int] = {}
        for node in self.topo_order():
            incoming = [longest[ref[0]] for ref in node.inputs]
            longest[node.id] = 1 + (max(incoming) if incoming else 0)
        return max(longest.values(), default=0)

    # -- compound-node helpers ------------------------------------------

    def loop_body(self, node: Node) -> "Graph":
        if node.kind is not OpKind.LOOP:
            raise GraphError(f"node {node.id} is not a LOOP")
        return node.bodies[0]

    def branch_bodies(self, node: Node) -> tuple["Graph", "Graph"]:
        if node.kind is not OpKind.BRANCH:
            raise GraphError(f"node {node.id} is not a BRANCH")
        return node.bodies[0], node.bodies[1]

    @staticmethod
    def body_inputs(body: "Graph") -> dict[Any, Node]:
        """Map INPUT slot -> node for a compound body graph."""
        return {node.value: node for node in body.find(OpKind.INPUT)}

    @staticmethod
    def body_outputs(body: "Graph") -> dict[Any, Node]:
        """Map OUTPUT slot -> node for a compound body graph."""
        return {node.value: node for node in body.find(OpKind.OUTPUT)}

    # -- copying ----------------------------------------------------------

    def clone(self) -> "Graph":
        """Deep copy (sub-graphs included); node ids are preserved."""
        fresh = Graph(self.name)
        fresh._ids = itertools.count(max(self.nodes, default=-1) + 1)
        for node_id, node in self.nodes.items():
            fresh.nodes[node_id] = Node(
                id=node.id, kind=node.kind, inputs=list(node.inputs),
                value=node.value, name=node.name,
                bodies=tuple(body.clone() for body in node.bodies),
                n_outputs=node.n_outputs)
        fresh._rebuild_index()
        return fresh

    def splice(self, other: "Graph",
               substitutions: dict[ValueRef, ValueRef],
               skip: Callable[[Node], bool] | None = None
               ) -> dict[ValueRef, ValueRef]:
        """Copy *other*'s nodes into this graph.

        ``substitutions`` maps references *inside other* (typically its
        INPUT nodes' outputs) to references in *self*; nodes whose
        output is substituted are not copied.  Nodes for which *skip*
        returns True (typically OUTPUT markers) are not copied either.
        Returns the full mapping from other-refs to self-refs.
        """
        mapping: dict[ValueRef, ValueRef] = dict(substitutions)
        for node in other.topo_order():
            if any(node.out(i) in mapping for i in range(node.n_outputs)):
                continue
            if skip is not None and skip(node):
                continue
            copied = self.add(
                kind=node.kind,
                inputs=[mapping[ref] for ref in node.inputs],
                value=node.value, name=node.name,
                bodies=tuple(body.clone() for body in node.bodies),
                n_outputs=node.n_outputs)
            for index in range(node.n_outputs):
                mapping[node.out(index)] = copied.out(index)
        return mapping

    # -- misc ---------------------------------------------------------------

    def stats(self) -> str:
        """One-line summary, e.g. ``"cdfg: 17 nodes (FE:8 *:4 +:3 ST:2)"``."""
        histogram = self.counts()
        parts = " ".join(
            f"{kind}:{count}"
            for kind, count in sorted(histogram.items(),
                                      key=lambda item: str(item[0])))
        return f"{self.name}: {len(self.nodes)} nodes ({parts})"

    def __repr__(self) -> str:
        return f"<Graph {self.name!r} with {len(self.nodes)} nodes>"
