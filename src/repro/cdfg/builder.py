"""Translation of the C-subset AST into a CDFG (paper step 1).

The builder performs a symbolic execution of the function body:

* **declared scalars** live in an environment mapping names to value
  references (pure dataflow);
* **globals** — names used without declaration, like ``sum``, ``i``,
  ``a``, ``c`` in the paper's FIR example — live in the statespace:
  global scalars are fetched (``FE``) on first read, kept in the
  environment while the function runs, and stored back (``ST``) once at
  the end; arrays always go through ``FE``/``ST`` element-wise;
* **loops and branches** become compound ``LOOP``/``BRANCH`` nodes
  holding sub-graphs, with loop-carried/live values (including the
  statespace itself) threaded through explicit slots.  This is the
  "control information which is used to control MUXes which in turn
  control the iteration and selection statements" of paper §III.

The translation is deliberately literal — no simplification happens
here.  Minimisation is the job of :mod:`repro.transforms`, mirroring
the paper's separation between translation and transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.errors import SemanticError, SourceLocation
from repro.lang.parser import parse_program
from repro.lang.sema import FunctionInfo, ProgramInfo, analyze
from repro.cdfg.graph import COND_SLOT, Graph, ValueRef
from repro.cdfg.ops import (
    Address,
    BINOP_FROM_C,
    INTRINSIC_FROM_C,
    OpKind,
    UNARYOP_FROM_C,
)

#: Pseudo-variable name used to thread the statespace through compound
#: control nodes.  Deliberately not a valid C identifier.
STATE_NAME = "$state"


class BuildError(SemanticError):
    """Raised when a construct cannot be translated (paper future work)."""


@dataclass
class _Scan:
    """Names touched by a statement subtree (drives live sets)."""

    reads: set[str] = field(default_factory=set)
    writes: set[str] = field(default_factory=set)
    touches_state: bool = False

    def union(self, other: "_Scan") -> "_Scan":
        return _Scan(self.reads | other.reads, self.writes | other.writes,
                     self.touches_state or other.touches_state)


class CdfgBuilder:
    """Builds the CDFG of one function of a parsed program."""

    def __init__(self, program: ast.Program, function: str = "main",
                 info: ProgramInfo | None = None):
        self._program = program
        self._function = program.function(function)
        info = info or analyze(program)
        self._info: FunctionInfo = info.function(function)
        self.graph = Graph(name=function)
        self._env: dict[str, ValueRef] = {}
        self._state: ValueRef | None = None
        self._finished = False

    # -- public -------------------------------------------------------

    def build(self) -> Graph:
        """Translate the function and return its CDFG."""
        graph = self.graph
        self._state = graph.add(OpKind.SS_IN).out()
        for param in self._function.params:
            node = graph.add(OpKind.INPUT, value=param, name=param)
            self._env[param] = node.out()
        statements = self._function.body.statements
        for index, statement in enumerate(statements):
            if isinstance(statement, ast.ReturnStmt):
                if index != len(statements) - 1:
                    raise self._error(
                        "'return' is only supported as the last statement",
                        statement.location)
                if statement.value is not None:
                    value = self._expr(statement.value)
                    graph.add(OpKind.OUTPUT, inputs=[value], value="return",
                              name="return")
                continue
            self._stmt(statement)
        self._store_globals_back()
        graph.add(OpKind.SS_OUT, inputs=[self._state])
        self._finished = True
        return graph

    # -- helpers ------------------------------------------------------

    def _error(self, message: str, location: SourceLocation) -> BuildError:
        return BuildError(message, location, self._program.source)

    def _symbol(self, name: str):
        return self._info.symbols[name]

    def _is_array(self, name: str) -> bool:
        return self._symbol(name).is_array

    def _is_global(self, name: str) -> bool:
        return self._symbol(name).is_global

    def _store_globals_back(self) -> None:
        """Emit the final ST for every written global scalar (paper
        Fig. 3: the minimised FIR graph ends with STs of sum and i)."""
        for symbol in sorted(self._info.global_scalars,
                             key=lambda s: s.name):
            if not symbol.is_written:
                continue
            if symbol.name not in self._env:  # written only in dead code
                continue
            address = self.graph.addr(Address(symbol.name))
            store = self.graph.add(
                OpKind.ST,
                inputs=[self._state, address.out(),
                        self._env[symbol.name]],
                name=symbol.name)
            self._state = store.out()

    # -- scalar environment --------------------------------------------

    def _read_scalar(self, name: str, location: SourceLocation) -> ValueRef:
        if name in self._env:
            return self._env[name]
        if self._is_global(name):
            address = self.graph.addr(Address(name))
            fetch = self.graph.add(OpKind.FE,
                                   inputs=[self._state, address.out()],
                                   name=name)
            self._env[name] = fetch.out()
            return fetch.out()
        # Declared local read before any write: C leaves it undefined;
        # we totalise to 0 so transformations stay behaviour-preserving.
        zero = self.graph.const(0)
        self._env[name] = zero.out()
        return zero.out()

    def _prefetch(self, names: set[str]) -> None:
        """Materialise every scalar in *names* into the environment so
        compound bodies can receive them through INPUT slots."""
        for name in sorted(names):
            if name in self._env or self._is_array(name):
                continue
            if self._is_global(name):
                address = self.graph.addr(Address(name))
                fetch = self.graph.add(OpKind.FE,
                                       inputs=[self._state, address.out()],
                                       name=name)
                self._env[name] = fetch.out()
            else:
                self._env[name] = self.graph.const(0).out()

    # -- addresses -------------------------------------------------------

    def _address_of(self, ref: ast.ArrayRef) -> ValueRef:
        """Build the address of ``name[index]``.

        Constant indices become constant addresses directly (the
        ``a##0`` style locations of paper Fig. 3); dynamic indices go
        through ADDR_ADD so the address computation is explicit
        dataflow.
        """
        assert ref.index is not None
        if isinstance(ref.index, ast.IntLit):
            return self.graph.addr(Address(ref.name, ref.index.value)).out()
        base = self.graph.addr(Address(ref.name, 0))
        index = self._expr(ref.index)
        summed = self.graph.add(OpKind.ADDR_ADD,
                                inputs=[base.out(), index], name=ref.name)
        return summed.out()

    # -- statements --------------------------------------------------------

    def _stmt(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            for inner in statement.statements:
                self._stmt(inner)
        elif isinstance(statement, ast.VarDecl):
            self._decl(statement)
        elif isinstance(statement, ast.Assign):
            self._assign(statement)
        elif isinstance(statement, ast.ExprStmt):
            if statement.expr is not None:
                self._expr(statement.expr)
        elif isinstance(statement, ast.IfStmt):
            self._if(statement)
        elif isinstance(statement, ast.WhileStmt):
            self._while(statement.cond, statement.body, statement.location)
        elif isinstance(statement, ast.DoWhileStmt):
            # do { B } while (c)  ==  B; while (c) { B }
            assert statement.body is not None
            self._stmt(statement.body)
            self._while(statement.cond, statement.body, statement.location)
        elif isinstance(statement, ast.ForStmt):
            self._for(statement)
        elif isinstance(statement, ast.ReturnStmt):
            raise self._error(
                "'return' is only supported as the last statement",
                statement.location)
        elif isinstance(statement, (ast.BreakStmt, ast.ContinueStmt)):
            raise self._error(
                "'break'/'continue' are not supported (richer control "
                "flow is listed as future work in the paper)",
                statement.location)
        else:  # pragma: no cover - defensive
            raise self._error(
                f"unhandled statement {type(statement).__name__}",
                statement.location)

    def _decl(self, decl: ast.VarDecl) -> None:
        if decl.is_array:
            if decl.array_init is not None:
                for offset, expr in enumerate(decl.array_init):
                    value = self._expr(expr)
                    address = self.graph.addr(Address(decl.name, offset))
                    store = self.graph.add(
                        OpKind.ST,
                        inputs=[self._state, address.out(), value],
                        name=decl.name)
                    self._state = store.out()
            return
        if decl.init is not None:
            self._env[decl.name] = self._expr(decl.init)

    def _assign(self, assign: ast.Assign) -> None:
        assert assign.target is not None and assign.value is not None
        value = self._expr(assign.value)
        target = assign.target
        if isinstance(target, ast.Ident):
            self._env[target.name] = value
            return
        address = self._address_of(target)
        store = self.graph.add(OpKind.ST,
                               inputs=[self._state, address, value],
                               name=target.name)
        self._state = store.out()

    # -- compound control ---------------------------------------------------

    def _scan_expr(self, expr: ast.Expr, scan: _Scan) -> None:
        if isinstance(expr, ast.Ident):
            scan.reads.add(expr.name)
        elif isinstance(expr, ast.ArrayRef):
            scan.touches_state = True
            assert expr.index is not None
            self._scan_expr(expr.index, scan)
        else:
            for child in expr.children():
                self._scan_expr(child, scan)

    def _scan_stmt(self, statement: ast.Stmt | None, scan: _Scan) -> None:
        if statement is None:
            return
        if isinstance(statement, ast.Block):
            for inner in statement.statements:
                self._scan_stmt(inner, scan)
        elif isinstance(statement, ast.VarDecl):
            if statement.init is not None:
                self._scan_expr(statement.init, scan)
                scan.writes.add(statement.name)
            if statement.array_init is not None:
                scan.touches_state = True
                for expr in statement.array_init:
                    self._scan_expr(expr, scan)
        elif isinstance(statement, ast.Assign):
            assert statement.target and statement.value
            self._scan_expr(statement.value, scan)
            if isinstance(statement.target, ast.Ident):
                scan.writes.add(statement.target.name)
            else:
                scan.touches_state = True
                assert statement.target.index is not None
                self._scan_expr(statement.target.index, scan)
        elif isinstance(statement, ast.ExprStmt):
            if statement.expr is not None:
                self._scan_expr(statement.expr, scan)
        elif isinstance(statement, ast.IfStmt):
            assert statement.cond is not None
            self._scan_expr(statement.cond, scan)
            self._scan_stmt(statement.then, scan)
            self._scan_stmt(statement.otherwise, scan)
        elif isinstance(statement, (ast.WhileStmt, ast.DoWhileStmt)):
            assert statement.cond is not None
            self._scan_expr(statement.cond, scan)
            self._scan_stmt(statement.body, scan)
        elif isinstance(statement, ast.ForStmt):
            self._scan_stmt(statement.init, scan)
            if statement.cond is not None:
                self._scan_expr(statement.cond, scan)
            self._scan_stmt(statement.step, scan)
            self._scan_stmt(statement.body, scan)
        elif isinstance(statement, ast.ReturnStmt):
            if statement.value is not None:
                self._scan_expr(statement.value, scan)

    def _scalar_names(self, scan: _Scan) -> list[str]:
        names = {name for name in scan.reads | scan.writes
                 if not self._is_array(name)}
        return sorted(names)

    def _if(self, statement: ast.IfStmt) -> None:
        assert statement.cond is not None and statement.then is not None
        scan = _Scan()
        self._scan_expr(statement.cond, scan)
        cond = self._expr(statement.cond)
        arm_scan = _Scan()
        self._scan_stmt(statement.then, arm_scan)
        self._scan_stmt(statement.otherwise, arm_scan)
        # Reads need their current value; writes need one too, because
        # the arm that does not write a name passes its old value
        # through (for globals that old value comes from an FE).
        self._prefetch({name for name in arm_scan.reads | arm_scan.writes
                        if not self._is_array(name)})
        carried = self._scalar_names(arm_scan)
        live_ins = list(carried)
        live_outs = sorted({name for name in arm_scan.writes
                            if not self._is_array(name)})
        if arm_scan.touches_state:
            live_ins.append(STATE_NAME)
            live_outs.append(STATE_NAME)
        then_body = self._build_arm(statement.then, live_ins, live_outs,
                                    "then")
        else_body = self._build_arm(statement.otherwise, live_ins,
                                    live_outs, "else")
        inputs = [cond] + [self._slot_ref(name) for name in live_ins]
        branch = self.graph.add(OpKind.BRANCH, inputs=inputs,
                                value=(tuple(live_ins), tuple(live_outs)),
                                bodies=(then_body, else_body),
                                n_outputs=len(live_outs))
        for index, name in enumerate(live_outs):
            self._slot_assign(name, branch.out(index))

    def _build_arm(self, statement: ast.Stmt | None, live_ins: list[str],
                   live_outs: list[str], label: str) -> Graph:
        """Build one arm of a BRANCH as a sub-graph."""
        body = Graph(name=label)
        saved_graph, saved_env, saved_state = (self.graph, self._env,
                                               self._state)
        self.graph = body
        self._env = {}
        self._state = None
        for name in live_ins:
            node = body.add(OpKind.INPUT, value=name, name=name)
            if name == STATE_NAME:
                self._state = node.out()
            else:
                self._env[name] = node.out()
        if statement is not None:
            self._stmt(statement)
        for name in live_outs:
            if name == STATE_NAME:
                source = self._state
            elif name in self._env:
                source = self._env[name]
            else:
                # Written in the other arm only: pass through this arm's
                # input if it exists, else the totalised 0.
                source = None
            if source is None:
                source = body.const(0).out()
            body.add(OpKind.OUTPUT, inputs=[source], value=name, name=name)
        self.graph, self._env, self._state = (saved_graph, saved_env,
                                              saved_state)
        return body

    def _while(self, cond: ast.Expr | None, body_stmt: ast.Stmt | None,
               location: SourceLocation) -> None:
        assert cond is not None and body_stmt is not None
        scan = _Scan()
        self._scan_expr(cond, scan)
        self._scan_stmt(body_stmt, scan)
        # Every carried scalar needs an initial value: globals fetch
        # their statespace value (kept if the loop runs zero times),
        # undefined locals start at the totalised 0.
        self._prefetch({name for name in scan.reads | scan.writes
                        if not self._is_array(name)})
        carried = self._scalar_names(scan)
        if scan.touches_state:
            carried = carried + [STATE_NAME]
        body = Graph(name="loop")
        saved_graph, saved_env, saved_state = (self.graph, self._env,
                                               self._state)
        self.graph = body
        self._env = {}
        self._state = None
        for name in carried:
            node = body.add(OpKind.INPUT, value=name, name=name)
            if name == STATE_NAME:
                self._state = node.out()
            else:
                self._env[name] = node.out()
        cond_ref = self._expr(cond)
        body.add(OpKind.OUTPUT, inputs=[cond_ref], value=COND_SLOT,
                 name=COND_SLOT)
        self._stmt(body_stmt)
        for name in carried:
            source = self._state if name == STATE_NAME else self._env[name]
            assert source is not None
            body.add(OpKind.OUTPUT, inputs=[source], value=name, name=name)
        self.graph, self._env, self._state = (saved_graph, saved_env,
                                              saved_state)
        inputs = [self._slot_ref(name) for name in carried]
        loop = self.graph.add(OpKind.LOOP, inputs=inputs,
                              value=tuple(carried), bodies=(body,),
                              n_outputs=len(carried))
        for index, name in enumerate(carried):
            self._slot_assign(name, loop.out(index))

    def _for(self, statement: ast.ForStmt) -> None:
        if statement.init is not None:
            self._stmt(statement.init)
        assert statement.body is not None
        cond = statement.cond
        if cond is None:
            raise self._error(
                "'for' without a condition never terminates and cannot "
                "be mapped", statement.location)
        body = statement.body
        if statement.step is not None:
            body = ast.Block(location=statement.location,
                             statements=[statement.body, statement.step])
        self._while(cond, body, statement.location)

    def _slot_ref(self, name: str) -> ValueRef:
        if name == STATE_NAME:
            assert self._state is not None
            return self._state
        return self._env[name]

    def _slot_assign(self, name: str, ref: ValueRef) -> None:
        if name == STATE_NAME:
            self._state = ref
        else:
            self._env[name] = ref

    # -- expressions ----------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> ValueRef:
        if isinstance(expr, ast.IntLit):
            return self.graph.const(expr.value).out()
        if isinstance(expr, ast.Ident):
            return self._read_scalar(expr.name, expr.location)
        if isinstance(expr, ast.ArrayRef):
            address = self._address_of(expr)
            assert self._state is not None
            fetch = self.graph.add(OpKind.FE,
                                   inputs=[self._state, address],
                                   name=expr.name)
            return fetch.out()
        if isinstance(expr, ast.BinOp):
            kind = BINOP_FROM_C[expr.op]
            assert expr.lhs is not None and expr.rhs is not None
            lhs = self._expr(expr.lhs)
            rhs = self._expr(expr.rhs)
            return self.graph.add(kind, inputs=[lhs, rhs]).out()
        if isinstance(expr, ast.UnaryOp):
            kind = UNARYOP_FROM_C[expr.op]
            assert expr.operand is not None
            operand = self._expr(expr.operand)
            return self.graph.add(kind, inputs=[operand]).out()
        if isinstance(expr, ast.CondExpr):
            assert expr.cond and expr.then and expr.otherwise
            cond = self._expr(expr.cond)
            then = self._expr(expr.then)
            otherwise = self._expr(expr.otherwise)
            return self.graph.add(OpKind.MUX,
                                  inputs=[cond, then, otherwise]).out()
        if isinstance(expr, ast.Call):
            kind = INTRINSIC_FROM_C[expr.name]
            args = [self._expr(arg) for arg in expr.args]
            return self.graph.add(kind, inputs=args).out()
        raise self._error(f"unhandled expression {type(expr).__name__}",
                          expr.location)


def build_cdfg(program: ast.Program, function: str = "main",
               info: ProgramInfo | None = None) -> Graph:
    """Translate one function of a parsed *program* into a CDFG.

    Calls to user-defined functions are inlined first (paper §III
    counts function calls among the CDFG operations; the tile has no
    call mechanism, so call-free code is what gets mapped).
    """
    from repro.lang.inline import has_user_calls, inline_calls
    if has_user_calls(program, function):
        program = inline_calls(program, function)
        info = None  # names changed; re-analyze
    return CdfgBuilder(program, function, info).build()


def build_main_cdfg(source: str, filename: str = "<input>") -> Graph:
    """Parse C *source* and translate its ``main`` into a CDFG."""
    program = parse_program(source, filename)
    return build_cdfg(program)
