"""Operation vocabulary of the CDFG and its scalar semantics.

Every CDFG node has an :class:`OpKind`.  This module also centralises:

* the port signature of each kind (:func:`signature`), used by the
  validator;
* which kinds are *pure* (safe for CSE / folding);
* which kinds an FPFA ALU can execute (:data:`ALU_OPS`), used by the
  clustering phase;
* the integer semantics of each scalar operator (:func:`eval_op`),
  shared by the interpreter, the constant folder and the tile
  simulator so all three agree by construction.

Integer semantics follow C for the operators the subset exposes, with
two documented totalisations so that speculative evaluation (used by
if-conversion) can never trap:

* division / modulo by zero yield 0;
* shifts by negative amounts yield 0, shifts are arithmetic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable


class PortType(enum.Enum):
    """Static type of a value travelling along a CDFG edge."""

    VALUE = "value"      # integer data
    ADDRESS = "address"  # a statespace address (ad field of a tuple)
    STATE = "state"      # the statespace itself


@dataclass(frozen=True, order=True)
class Address:
    """A statespace address: a symbolic base name plus integer offset.

    The paper's unrolled FIR figure labels fetched locations ``a##0``,
    ``c##3`` and so on: array element ``a[i]`` at constant ``i`` is the
    address ``Address("a", i)``; scalar ``sum`` is ``Address("sum")``.
    """

    name: str
    offset: int = 0

    def __str__(self) -> str:
        if self.offset == 0 and "#" not in self.name:
            # Scalars print bare; array bases always show the offset.
            return self.name
        return f"{self.name}##{self.offset}"

    def shifted(self, delta: int) -> "Address":
        """Return this address displaced by *delta* words."""
        return Address(self.name, self.offset + delta)


class OpKind(enum.Enum):
    """Every operation a CDFG node can perform."""

    # Structural
    CONST = "const"        # value: int                         -> VALUE
    ADDR = "addr"          # value: Address                     -> ADDRESS
    INPUT = "input"        # value: slot index or name          -> VALUE
    OUTPUT = "output"      # (value), value: slot index or name
    SS_IN = "ss_in"        #                                    -> STATE
    SS_OUT = "ss_out"      # (state)

    # Statespace primitives (paper Fig. 2)
    ST = "ST"              # (state, address, value)            -> STATE
    FE = "FE"              # (state, address)                   -> VALUE
    DEL = "DEL"            # (state, address)                   -> STATE

    # Address arithmetic (array indexing with a dynamic index)
    ADDR_ADD = "addr+"     # (address, value)                   -> ADDRESS

    # Arithmetic
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    NEG = "neg"

    # Bitwise
    AND = "&"
    OR = "|"
    XOR = "^"
    NOT = "~"
    SHL = "<<"
    SHR = ">>"

    # Comparison (produce 0/1)
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="

    # Logical (non-short-circuit dataflow forms, produce 0/1)
    LAND = "&&"
    LOR = "||"
    LNOT = "!"

    # Intrinsics
    MIN = "min"
    MAX = "max"
    ABS = "abs"

    # Selection (control info steering a MUX, paper §III)
    MUX = "mux"            # (cond, if_true, if_false)

    # Compound control (paper: iteration and selection statements)
    LOOP = "loop"
    BRANCH = "branch"

    def __str__(self) -> str:
        return self.value


V = PortType.VALUE
A = PortType.ADDRESS
S = PortType.STATE

# kind -> (input port types, output port types); None means
# variadic/special (INPUT, OUTPUT, LOOP, BRANCH, MUX handled apart).
_SIGNATURES: dict[OpKind, tuple[tuple[PortType, ...], tuple[PortType, ...]]]
_SIGNATURES = {
    OpKind.CONST: ((), (V,)),
    OpKind.ADDR: ((), (A,)),
    OpKind.SS_IN: ((), (S,)),
    OpKind.SS_OUT: ((S,), ()),
    OpKind.ST: ((S, A, V), (S,)),
    OpKind.FE: ((S, A), (V,)),
    OpKind.DEL: ((S, A), (S,)),
    OpKind.ADDR_ADD: ((A, V), (A,)),
    OpKind.NEG: ((V,), (V,)),
    OpKind.NOT: ((V,), (V,)),
    OpKind.LNOT: ((V,), (V,)),
    OpKind.ABS: ((V,), (V,)),
}

_BINARY_KINDS = (
    OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.MOD,
    OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.SHL, OpKind.SHR,
    OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE, OpKind.EQ, OpKind.NE,
    OpKind.LAND, OpKind.LOR, OpKind.MIN, OpKind.MAX,
)
for _kind in _BINARY_KINDS:
    _SIGNATURES[_kind] = ((V, V), (V,))


def signature(kind: OpKind):
    """Return ``(input_types, output_types)`` or None for special kinds."""
    return _SIGNATURES.get(kind)


#: Kinds with no side effect: identical (kind, inputs, value) nodes can
#: be merged by CSE and folded when inputs are constants.  ``FE`` is
#: pure *given the same state version* — reading never changes the
#: statespace (Fig. 2: FE has no ss_out) — so it appears here and CSE
#: keys include the state operand.
PURE_OPS = frozenset(
    kind for kind in OpKind
    if kind not in (OpKind.ST, OpKind.DEL, OpKind.SS_IN, OpKind.SS_OUT,
                    OpKind.INPUT, OpKind.OUTPUT, OpKind.LOOP, OpKind.BRANCH)
)

#: Kinds whose two value operands commute (used by CSE canonicalisation).
COMMUTATIVE_OPS = frozenset({
    OpKind.ADD, OpKind.MUL, OpKind.AND, OpKind.OR, OpKind.XOR,
    OpKind.EQ, OpKind.NE, OpKind.LAND, OpKind.LOR, OpKind.MIN, OpKind.MAX,
})

#: Operations an FPFA ALU can execute (drives clustering).  Everything
#: scalar; statespace primitives are storage traffic, not ALU work.
ALU_OPS = frozenset({
    OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.MOD,
    OpKind.NEG, OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT,
    OpKind.SHL, OpKind.SHR, OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE,
    OpKind.EQ, OpKind.NE, OpKind.LAND, OpKind.LOR, OpKind.LNOT,
    OpKind.MIN, OpKind.MAX, OpKind.ABS, OpKind.MUX,
})


def c_div(lhs: int, rhs: int) -> int:
    """C integer division: truncation toward zero; x/0 totalised to 0."""
    if rhs == 0:
        return 0
    quotient = abs(lhs) // abs(rhs)
    return quotient if (lhs < 0) == (rhs < 0) else -quotient


def c_mod(lhs: int, rhs: int) -> int:
    """C remainder: sign follows the dividend; x%0 totalised to 0."""
    if rhs == 0:
        return 0
    return lhs - c_div(lhs, rhs) * rhs


def _shl(lhs: int, rhs: int) -> int:
    return lhs << rhs if rhs >= 0 else 0


def _shr(lhs: int, rhs: int) -> int:
    return lhs >> rhs if rhs >= 0 else 0


_EVAL: dict[OpKind, Callable[..., int]] = {
    OpKind.ADD: lambda a, b: a + b,
    OpKind.SUB: lambda a, b: a - b,
    OpKind.MUL: lambda a, b: a * b,
    OpKind.DIV: c_div,
    OpKind.MOD: c_mod,
    OpKind.NEG: lambda a: -a,
    OpKind.AND: lambda a, b: a & b,
    OpKind.OR: lambda a, b: a | b,
    OpKind.XOR: lambda a, b: a ^ b,
    OpKind.NOT: lambda a: ~a,
    OpKind.SHL: _shl,
    OpKind.SHR: _shr,
    OpKind.LT: lambda a, b: int(a < b),
    OpKind.LE: lambda a, b: int(a <= b),
    OpKind.GT: lambda a, b: int(a > b),
    OpKind.GE: lambda a, b: int(a >= b),
    OpKind.EQ: lambda a, b: int(a == b),
    OpKind.NE: lambda a, b: int(a != b),
    OpKind.LAND: lambda a, b: int(a != 0 and b != 0),
    OpKind.LOR: lambda a, b: int(a != 0 or b != 0),
    OpKind.LNOT: lambda a: int(a == 0),
    OpKind.MIN: min,
    OpKind.MAX: max,
    OpKind.ABS: abs,
    OpKind.MUX: lambda c, t, f: t if c != 0 else f,
}


def can_eval(kind: OpKind) -> bool:
    """True if :func:`eval_op` knows how to compute *kind*."""
    return kind in _EVAL


def wrap_value(value: int, width: int | None) -> int:
    """Two's-complement wrap of *value* to *width* bits (None = no-op).

    The single definition shared by the interpreter, the constant
    folder, the unroller and the tile simulator, so a finite-width
    tile wraps identically everywhere.
    """
    if width is None or not isinstance(value, int):
        return value
    modulus = 1 << width
    half = 1 << (width - 1)
    return (value + half) % modulus - half


def eval_op(kind: OpKind, *operands, width: int | None = None):
    """Evaluate a scalar operation; shared by interpreter/folder/simulator.

    MUX is evaluated non-lazily (both arms already computed), matching
    its dataflow-hardware meaning.  With *width* the result wraps to
    the data-path width — compile-time evaluation must use the same
    width as the target tile or constant folding of overflowing
    expressions would diverge from the hardware.
    """
    try:
        function = _EVAL[kind]
    except KeyError:
        raise ValueError(f"operation {kind} has no scalar evaluator") \
            from None
    return wrap_value(function(*operands), width)


#: Mapping from C operator spellings (AST BinOp/UnaryOp) to OpKind.
BINOP_FROM_C = {
    "+": OpKind.ADD, "-": OpKind.SUB, "*": OpKind.MUL, "/": OpKind.DIV,
    "%": OpKind.MOD, "&": OpKind.AND, "|": OpKind.OR, "^": OpKind.XOR,
    "<<": OpKind.SHL, ">>": OpKind.SHR, "<": OpKind.LT, "<=": OpKind.LE,
    ">": OpKind.GT, ">=": OpKind.GE, "==": OpKind.EQ, "!=": OpKind.NE,
    "&&": OpKind.LAND, "||": OpKind.LOR,
}

UNARYOP_FROM_C = {
    "-": OpKind.NEG, "~": OpKind.NOT, "!": OpKind.LNOT,
}

INTRINSIC_FROM_C = {
    "min": OpKind.MIN, "max": OpKind.MAX, "abs": OpKind.ABS,
}
