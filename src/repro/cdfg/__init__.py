"""Control Data Flow Graph (CDFG) intermediate representation.

The paper (§III) defines a CDFG as a hypergraph of operations (C
operators, function calls) plus the dataflow between them, including
the *statespace* — the mathematical abstraction of the C memory model
(§IV) — and the control information steering MUXes.

This package provides:

* :mod:`repro.cdfg.ops` — the operation vocabulary and its scalar
  semantics;
* :mod:`repro.cdfg.statespace` — the (ad, da) tuple-set memory model
  with the three primitive operations ST / FE / DEL of paper Fig. 2;
* :mod:`repro.cdfg.graph` — the graph data structure itself;
* :mod:`repro.cdfg.builder` — translation from the C-subset AST;
* :mod:`repro.cdfg.interp` — a reference interpreter used as the
  behaviour-preservation oracle throughout the test-suite;
* :mod:`repro.cdfg.validate` — structural invariants;
* :mod:`repro.cdfg.dot` — Graphviz export.
"""

from repro.cdfg.graph import Graph, Node, ValueRef
from repro.cdfg.ops import Address, OpKind, PortType
from repro.cdfg.statespace import StateSpace
from repro.cdfg.builder import CdfgBuilder, build_cdfg, build_main_cdfg
from repro.cdfg.interp import InterpreterError, run_graph, run_main
from repro.cdfg.validate import ValidationError, validate
from repro.cdfg.dot import to_dot

__all__ = [
    "Address",
    "CdfgBuilder",
    "Graph",
    "InterpreterError",
    "Node",
    "OpKind",
    "PortType",
    "StateSpace",
    "ValidationError",
    "ValueRef",
    "build_cdfg",
    "build_main_cdfg",
    "run_graph",
    "run_main",
    "to_dot",
    "validate",
]
