"""The paper's contribution: three-phase mapping onto an FPFA tile.

Paper §VI: "We use a three phase decomposition algorithm based on the
two-phased decomposition of multiprocessor scheduling introduced by
Sarkar: (1) Task clustering and ALU data-path mapping; (2) Scheduling
the clusters on the 5 physical ALUs of an FPFA tile; (3) Resource
allocation."

* :mod:`repro.core.taskgraph` — lowers a minimised, flat CDFG into the
  task DAG the three phases consume;
* :mod:`repro.core.clustering` — phase 1 (template-cover clustering);
* :mod:`repro.core.scheduling` — phase 2 (level scheduling, ≤5
  clusters per level, insert-a-new-level rule of Fig. 4);
* :mod:`repro.core.allocation` — phase 3 (the Fig. 5 heuristic);
* :mod:`repro.core.pipeline` — the end-to-end ``map_source`` /
  ``map_graph`` drivers and mapping verification.
"""

from repro.core.taskgraph import (
    MappingError,
    Operand,
    StoreTask,
    Task,
    TaskGraph,
)
from repro.core.clustering import Cluster, ClusterGraph, cluster_tasks
from repro.core.scheduling import Schedule, ScheduledCluster, schedule_clusters
from repro.core.allocation import AllocationError, Allocator, allocate
from repro.core.pipeline import (
    MappingReport,
    map_graph,
    map_source,
    verify_mapping,
)

__all__ = [
    "AllocationError",
    "Allocator",
    "Cluster",
    "ClusterGraph",
    "MappingError",
    "MappingReport",
    "Operand",
    "Schedule",
    "ScheduledCluster",
    "StoreTask",
    "Task",
    "TaskGraph",
    "allocate",
    "cluster_tasks",
    "map_graph",
    "map_source",
    "schedule_clusters",
    "verify_mapping",
]
