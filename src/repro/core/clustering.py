"""Phase 1 — task clustering and ALU data-path mapping (paper §VI-A).

"In the clustering phase the task graph is partitioned and mapped to
an unbounded number of fully connected ALUs. [...] This clustering and
mapping scheme is based on the ALU data-path of our FPFA."

A *cluster* is a small operation tree that one configured ALU executes
in one clock cycle; legal shapes come from the
:class:`~repro.arch.templates.TemplateLibrary`.  Clustering is a
greedy maximal-munch cover in reverse topological order — at each
unclaimed task we try the largest legal template first (DUAL, then
CHAIN, then SINGLE), claiming producer tasks only when the merged
value does not escape the cluster (the producer's only consumer is the
cluster root and its result is not a program output).

Following Sarkar's reasoning, merging a producer into its consumer
*internalises* the connecting edge: the intermediate value never
leaves the ALU data-path, saving a store/load round-trip and a level.
The number of ALUs is unbounded here; the 5-ALU limit is phase 2's
problem.

Invariants
----------
* Clustering is a **partition** of the task graph: every task is
  covered by exactly one cluster (``owner`` is total), and a value
  merged into a cluster has no consumer outside it.
* The cluster graph is a DAG whenever the task graph is one (merging
  only follows single-consumer producer edges, which cannot create a
  cycle) — the property phase 2, the multi-tile partitioner and the
  array scheduler all rely on.
* Cluster ids are assigned in reverse topological visit order and
  are deterministic for a given task graph and template library.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.templates import ClusterShape, TemplateLibrary
from repro.cdfg.ops import COMMUTATIVE_OPS, OpKind
from repro.core.taskgraph import (
    Operand,
    OperandKind,
    StoreTask,
    Task,
    TaskGraph,
)


@dataclass
class Cluster:
    """One ALU configuration instance covering 1-3 tasks."""

    id: int
    shape: ClusterShape
    #: Operation tree, root first — matches AluConfig.ops.
    ops: tuple[OpKind, ...]
    #: Covered task ids, root first.
    task_ids: tuple[int, ...]
    #: Leaf operands in ALU-input order (leaf i reads bank i).
    operands: list[Operand] = field(default_factory=list)

    @property
    def root_task_id(self) -> int:
        return self.task_ids[0]

    @property
    def n_ops(self) -> int:
        return len(self.ops)

    def predecessor_cluster_ids(self, owner: dict[int, int]) -> list[int]:
        """Clusters whose results this cluster consumes."""
        predecessors = []
        for operand in self.operands:
            if operand.kind is OperandKind.TASK:
                predecessors.append(owner[operand.task_id])
        return predecessors

    def label(self) -> str:
        return f"Clu{self.id}[{'/'.join(str(op) for op in self.ops)}]"


@dataclass
class ClusterGraph:
    """The clustered DAG handed to phase 2.

    The graph is immutable once :func:`cluster_tasks` returns, so the
    adjacency tables (``predecessors``/``successors``) are memoised on
    first use — phase 2, the multi-tile partitioner and the array
    scheduler all walk them repeatedly, and ``consumers_of`` inside a
    loop must stay O(degree), not O(V·E).  The returned tables are the
    shared memo: treat them as read-only (copy before mutating).
    """

    clusters: dict[int, Cluster] = field(default_factory=dict)
    #: task id -> id of the cluster covering it.
    owner: dict[int, int] = field(default_factory=dict)
    stores: list[StoreTask] = field(default_factory=list)
    #: Lazily-built adjacency memos (valid because the graph never
    #: changes after construction); excluded from equality/repr.
    _predecessors: dict[int, set[int]] | None = field(
        default=None, init=False, repr=False, compare=False)
    _successors: dict[int, set[int]] | None = field(
        default=None, init=False, repr=False, compare=False)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def predecessors(self) -> dict[int, set[int]]:
        """cluster id -> set of predecessor cluster ids (memoised)."""
        if self._predecessors is None:
            table: dict[int, set[int]] = {}
            for cluster in self.clusters.values():
                table[cluster.id] = set(
                    cluster.predecessor_cluster_ids(self.owner))
            self._predecessors = table
        return self._predecessors

    def successors(self) -> dict[int, set[int]]:
        """cluster id -> set of successor cluster ids (memoised)."""
        if self._successors is None:
            table: dict[int, set[int]] = {cid: set()
                                          for cid in self.clusters}
            for cluster_id, preds in self.predecessors().items():
                for pred in preds:
                    table[pred].add(cluster_id)
            self._successors = table
        return self._successors

    def consumers_of(self, cluster_id: int) -> list[int]:
        """Clusters consuming *cluster_id*'s result, sorted."""
        return sorted(self.successors()[cluster_id])

    def internalised_edges(self, taskgraph: TaskGraph) -> int:
        """Task-graph edges hidden inside clusters (Sarkar's metric)."""
        internal = 0
        for task in taskgraph.tasks.values():
            for pred in task.predecessor_ids():
                if self.owner[pred] == self.owner[task.id]:
                    internal += 1
        return internal


def _task_operand_count(task: Task) -> int:
    return len(task.operands)


def _remap_operand(operand: Operand, cluster_of_root: dict[int, int]
                   ) -> Operand:
    """Task operands keep the task id; owners map them to clusters."""
    return operand


def cluster_tasks(taskgraph: TaskGraph,
                  library: TemplateLibrary | None = None) -> ClusterGraph:
    """Cover *taskgraph* with ALU data-path clusters."""
    library = library or TemplateLibrary.two_level()
    consumers = taskgraph.consumers()
    #: results that must exist outside any consumer's data-path
    output_tasks = {store.source.task_id for store in taskgraph.stores
                    if store.source.kind is OperandKind.TASK}
    claimed: set[int] = set()
    result = ClusterGraph(stores=list(taskgraph.stores))
    next_cluster_id = 0

    def claimable(task: Task, consumer_id: int) -> bool:
        """May *task* be merged into its consumer's cluster?"""
        if task.id in claimed:
            return False
        if task.id in output_tasks:
            return False
        # Exactly one consuming reference: the value must not escape
        # the merged data-path (a twice-read operand still escapes).
        return consumers[task.id] == [consumer_id]

    order = taskgraph.topo_order()
    for task in reversed(order):
        if task.id in claimed:
            continue
        cluster = _match(taskgraph, library, task, claimable, claimed)
        cluster.id = next_cluster_id
        next_cluster_id += 1
        result.clusters[cluster.id] = cluster
        for task_id in cluster.task_ids:
            claimed.add(task_id)
            result.owner[task_id] = cluster.id
    return result


def _match(taskgraph: TaskGraph, library: TemplateLibrary, root: Task,
           claimable, claimed: set[int]) -> Cluster:
    """Try DUAL, then CHAIN, then SINGLE at *root*."""
    tasks = taskgraph.tasks

    def producer(operand: Operand) -> Task | None:
        if operand.kind is OperandKind.TASK:
            return tasks[operand.task_id]
        return None

    # DUAL: binary root, both operands produced by claimable tasks.
    if len(root.operands) == 2:
        left = producer(root.operands[0])
        right = producer(root.operands[1])
        if (left is not None and right is not None
                and left.id != right.id
                and claimable(left, root.id) and claimable(right, root.id)):
            n_inputs = (_task_operand_count(left)
                        + _task_operand_count(right))
            if library.dual_legal(root.kind, left.kind, right.kind,
                                  n_inputs):
                operands = list(left.operands) + list(right.operands)
                return Cluster(
                    id=-1, shape=ClusterShape.DUAL,
                    ops=(root.kind, left.kind, right.kind),
                    task_ids=(root.id, left.id, right.id),
                    operands=operands)

    # CHAIN: one operand's producer feeds the first ALU level.  The
    # chained producer must sit in operand position 0 (the data-path
    # feeds level 1 into the left port of level 2); a commutative root
    # lets us swap the other operand into place.
    for position, operand in enumerate(root.operands):
        child = producer(operand)
        if child is None or not claimable(child, root.id):
            continue
        if position > 0 and not (len(root.operands) == 2
                                 and root.kind in COMMUTATIVE_OPS):
            continue
        n_inputs = (_task_operand_count(child)
                    + _task_operand_count(root) - 1)
        if not library.chain_legal(root.kind, child.kind, n_inputs):
            continue
        rest = [op for index, op in enumerate(root.operands)
                if index != position]
        return Cluster(
            id=-1, shape=ClusterShape.CHAIN,
            ops=(root.kind, child.kind),
            task_ids=(root.id, child.id),
            operands=list(child.operands) + rest)

    if not library.single_legal(root.kind):
        raise ValueError(
            f"operation {root.kind} of task {root.id} is not "
            f"ALU-executable")
    return Cluster(id=-1, shape=ClusterShape.SINGLE, ops=(root.kind,),
                   task_ids=(root.id,), operands=list(root.operands))
