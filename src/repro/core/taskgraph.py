"""Lowering a minimised CDFG into the mapper's task DAG.

The three mapping phases (paper §VI) operate on a directed acyclic
graph of ALU-executable operations.  After complete unrolling and full
simplification the CDFG has exactly that shape, plus the statespace
plumbing.  This module converts it:

* every ALU-executable node (arith/logic/compare/MUX) becomes a
  :class:`Task`;
* every ``FE`` hanging off ``ss_in`` with a constant address becomes a
  *memory input operand* — the value sits in a tile memory when
  execution starts;
* the final ``ST`` chain becomes :class:`StoreTask` records — the
  program's outputs ("for each output do store it to a memory",
  Fig. 5); a ``DEL`` on the chain lowers to storing the totalised 0;
* ``INPUT`` parameter nodes become memory input operands at the
  scalar address of the parameter's name.

Anything the paper's flow does not map — residual loops/branches
(future work in §VII), dynamic addresses, fetches still depending on
stores — raises :class:`MappingError` with a precise diagnostic
instead of producing a wrong program.

Invariants
----------
* The task graph is a DAG over ALU-executable tasks only; lowering
  either succeeds completely or raises :class:`MappingError` —
  there is no partially-mapped state.
* Operand order is preserved from the CDFG (operand *i* later feeds
  ALU input *i*), and every ``TASK`` operand references a task in
  the graph.
* Task ids follow a fixed traversal of the CDFG, so lowering is
  deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.cdfg.graph import Graph, Node, ValueRef
from repro.cdfg.ops import ALU_OPS, Address, OpKind
from repro.transforms.dependency import resolve_address


class MappingError(Exception):
    """Raised when a CDFG cannot be mapped onto the tile."""


class OperandKind(enum.Enum):
    """Where a task's leaf operand comes from."""

    CONST = "const"   # an immediate constant
    MEM = "mem"       # a word of initial memory (FE off ss_in)
    TASK = "task"     # the result of another task


@dataclass(frozen=True)
class Operand:
    """One leaf input of a task."""

    kind: OperandKind
    value: int | Address | None = None  # CONST value or MEM address
    task_id: int | None = None          # producing task for TASK kind

    @classmethod
    def const(cls, value: int) -> "Operand":
        return cls(OperandKind.CONST, value=value)

    @classmethod
    def mem(cls, address: Address) -> "Operand":
        return cls(OperandKind.MEM, value=address)

    @classmethod
    def task(cls, task_id: int) -> "Operand":
        return cls(OperandKind.TASK, task_id=task_id)

    def __str__(self) -> str:
        if self.kind is OperandKind.CONST:
            return f"#{self.value}"
        if self.kind is OperandKind.MEM:
            return f"[{self.value}]"
        return f"t{self.task_id}"


@dataclass
class Task:
    """One ALU-executable operation."""

    id: int
    kind: OpKind
    operands: list[Operand] = field(default_factory=list)

    def predecessor_ids(self) -> Iterator[int]:
        for operand in self.operands:
            if operand.kind is OperandKind.TASK:
                assert operand.task_id is not None
                yield operand.task_id

    def __str__(self) -> str:
        rendered = ", ".join(str(operand) for operand in self.operands)
        return f"t{self.id} = {self.kind}({rendered})"


@dataclass
class StoreTask:
    """A program output: value stored at a statespace address."""

    address: Address
    source: Operand

    def __str__(self) -> str:
        return f"[{self.address}] = {self.source}"


@dataclass
class TaskGraph:
    """The DAG handed to clustering/scheduling/allocation."""

    tasks: dict[int, Task] = field(default_factory=dict)
    stores: list[StoreTask] = field(default_factory=list)

    # -- queries -------------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def input_addresses(self) -> list[Address]:
        """Every initial-memory address read by any task or store."""
        addresses: set[Address] = set()
        for task in self.tasks.values():
            for operand in task.operands:
                if operand.kind is OperandKind.MEM:
                    addresses.add(operand.value)
        for store in self.stores:
            if store.source.kind is OperandKind.MEM:
                addresses.add(store.source.value)
        return sorted(addresses)

    def output_addresses(self) -> list[Address]:
        return [store.address for store in self.stores]

    def consumers(self) -> dict[int, list[int]]:
        """task id -> ids of tasks consuming its result (sorted)."""
        table: dict[int, list[int]] = {task_id: []
                                       for task_id in self.tasks}
        for task in sorted(self.tasks.values(), key=lambda t: t.id):
            for pred in task.predecessor_ids():
                table[pred].append(task.id)
        return table

    def topo_order(self) -> list[Task]:
        """Tasks in dependence order (deterministic)."""
        import heapq
        indegree = {task_id: len(set(task.predecessor_ids()))
                    for task_id, task in self.tasks.items()}
        consumers = self.consumers()
        ready = [task_id for task_id, degree in indegree.items()
                 if degree == 0]
        heapq.heapify(ready)
        order = []
        while ready:
            task_id = heapq.heappop(ready)
            order.append(self.tasks[task_id])
            for consumer in set(consumers[task_id]):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    heapq.heappush(ready, consumer)
        if len(order) != len(self.tasks):
            raise MappingError("cycle in task graph")
        return order

    def critical_path_length(self) -> int:
        """Longest dependence chain (in tasks)."""
        depth: dict[int, int] = {}
        for task in self.topo_order():
            preds = [depth[p] for p in task.predecessor_ids()]
            depth[task.id] = 1 + (max(preds) if preds else 0)
        return max(depth.values(), default=0)

    # -- lowering ---------------------------------------------------------

    @classmethod
    def from_cdfg(cls, graph: Graph) -> "TaskGraph":
        """Lower a minimised flat CDFG; raises MappingError otherwise."""
        _reject_unmappable(graph)
        lowering = _Lowering(graph)
        return lowering.run()


def _reject_unmappable(graph: Graph) -> None:
    residual = [node for node in graph.sorted_nodes()
                if node.kind in (OpKind.LOOP, OpKind.BRANCH)]
    if residual:
        kinds = ", ".join(f"{node.kind} (node {node.id})"
                          for node in residual)
        raise MappingError(
            f"graph still contains compound control after "
            f"simplification: {kinds}.  Loops must have statically "
            f"determined trip counts and branches must be "
            f"if-convertible — the paper lists richer control flow as "
            f"future work (§VII)")


class _Lowering:
    """One lowering run (keeps the node->operand memo)."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self.result = TaskGraph()
        self._operand_of: dict[ValueRef, Operand] = {}

    def run(self) -> TaskGraph:
        graph = self.graph
        ss_in = graph.find(OpKind.SS_IN)
        self._ss_in_ref = ss_in[0].out() if ss_in else None
        for node in graph.topo_order():
            self._lower_node(node)
        self._lower_state_chain()
        self._lower_outputs()
        return self.result

    # -- values ----------------------------------------------------------

    def _operand(self, ref: ValueRef) -> Operand:
        if ref in self._operand_of:
            return self._operand_of[ref]
        node = self.graph.producer(ref)
        raise MappingError(
            f"node {node.id} ({node.kind}) is not mappable as an "
            f"operand")

    def _lower_node(self, node: Node) -> None:
        kind = node.kind
        if kind is OpKind.CONST:
            self._operand_of[node.out()] = Operand.const(node.value)
        elif kind is OpKind.INPUT:
            # Parameters live in memory at their name's scalar address.
            self._operand_of[node.out()] = Operand.mem(
                Address(str(node.value)))
        elif kind is OpKind.FE:
            self._lower_fetch(node)
        elif kind in ALU_OPS:
            task = Task(id=node.id, kind=kind,
                        operands=[self._operand(ref)
                                  for ref in node.inputs])
            self.result.tasks[task.id] = task
            self._operand_of[node.out()] = Operand.task(task.id)
        elif kind in (OpKind.ADDR, OpKind.ADDR_ADD, OpKind.SS_IN,
                      OpKind.SS_OUT, OpKind.ST, OpKind.DEL,
                      OpKind.OUTPUT):
            pass  # handled by fetch/state-chain lowering
        else:  # pragma: no cover - defensive
            raise MappingError(f"cannot lower node {node.id} ({kind})")

    def _lower_fetch(self, node: Node) -> None:
        if self._ss_in_ref is None or node.inputs[0] != self._ss_in_ref:
            producer = self.graph.producer(node.inputs[0])
            raise MappingError(
                f"FE node {node.id} still depends on {producer.kind} "
                f"(node {producer.id}); dependency analysis could not "
                f"prove independence — typically a dynamic address")
        resolved = resolve_address(self.graph, node.inputs[1])
        if not resolved.is_const:
            raise MappingError(
                f"FE node {node.id} has a dynamic address; the mapped "
                f"DAG needs constant addresses (complete unrolling "
                f"failed upstream?)")
        address = Address(resolved.base, resolved.offset)
        self._operand_of[node.out()] = Operand.mem(address)

    # -- the final store chain ----------------------------------------------

    def _lower_state_chain(self) -> None:
        ss_outs = self.graph.find(OpKind.SS_OUT)
        if not ss_outs:
            return
        chain: list[Node] = []
        current = ss_outs[0].inputs[0]
        while self._ss_in_ref is None or current != self._ss_in_ref:
            producer = self.graph.producer(current)
            if producer.kind is OpKind.ST:
                chain.append(producer)
                current = producer.inputs[0]
            elif producer.kind is OpKind.DEL:
                chain.append(producer)
                current = producer.inputs[0]
            elif producer.kind is OpKind.SS_IN:
                break
            else:
                raise MappingError(
                    f"state chain contains {producer.kind} "
                    f"(node {producer.id}); cannot map")
        chain.reverse()
        seen: dict[Address, int] = {}
        stores: list[StoreTask] = []
        for writer in chain:
            resolved = resolve_address(self.graph, writer.inputs[1])
            if not resolved.is_const:
                raise MappingError(
                    f"{writer.kind} node {writer.id} stores to a "
                    f"dynamic address; cannot map")
            address = Address(resolved.base, resolved.offset)
            if writer.kind is OpKind.ST:
                source = self._operand(writer.inputs[2])
            else:  # DEL: hardware memories cannot forget — store the
                # totalised 0 (observational statespace equality).
                source = Operand.const(0)
            if address in seen:
                stores[seen[address]] = StoreTask(address, source)
            else:
                seen[address] = len(stores)
                stores.append(StoreTask(address, source))
        self.result.stores.extend(stores)

    def _lower_outputs(self) -> None:
        for node in self.graph.find(OpKind.OUTPUT):
            address = Address(f"__out_{node.value}")
            self.result.stores.append(
                StoreTask(address, self._operand(node.inputs[0])))
