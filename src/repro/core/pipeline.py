"""End-to-end mapping driver (the paper's four-step flow).

``map_source`` runs: C text → CDFG (step 1: translation) → complete
unrolling + full simplification (step 2: transformation) → task graph
→ clustering (step 3a) → scheduling (3b) → resource allocation (3c),
returning a :class:`MappingReport` that keeps every intermediate
artifact for inspection, metrics and the experiment harness.

The flow is factored into two stages so sweeps can reuse work:

* the **frontend** (:func:`compile_frontend` / :func:`prepare_graph`)
  turns source into a transformed CDFG.  It depends only on the
  program, the data-path *width* and the transform options
  (``simplify``/``balance``) — not on any other tile or array
  parameter — and its result, a :class:`Frontend`, is an immutable,
  picklable artifact;
* the **backend** (:func:`map_frontend`) clusters, schedules and
  allocates one frontend onto one concrete tile (and optionally a
  tile array).  A 100-point sweep over tile parameters compiles each
  kernel once and runs 100 backends.

``map_graph``/``map_source`` compose the two and are byte-for-byte
the original single-call flow.  Every report also carries a per-stage
wall-time breakdown (``report.timings``) that ``fpfa-map map
--profile`` prints.

``verify_mapping`` closes the loop: the tile program, executed on the
cycle-level simulator, must leave exactly the values at its output
addresses that the CDFG interpreter computes for the *original,
untransformed* graph.

An optional multi-tile stage (``map_graph(..., array=...)``) runs
after allocation: the clustered graph is partitioned over an FPFA
tile array and rescheduled with explicit inter-tile transfers
(:mod:`repro.multitile`), attached as ``report.multitile``.

Invariants
----------
* The flow is **deterministic**: the same (source, params, library,
  options) always produces the same report, program and metrics —
  the property the DSE result cache is built on.
* The mapped program is **semantics-preserving**; ``verify_mapping``
  enforces observational equality against the interpreter on the
  original graph, not the transformed one.
* The multi-tile stage is **additive**: it never alters the
  single-tile artifacts, and with ``n_tiles == 1`` it is the
  identity (zero transfers, unchanged metrics).
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.arch.control import TileProgram
from repro.arch.params import TileParams
from repro.arch.tilearray import TileArrayParams
from repro.arch.simulator import simulate
from repro.arch.templates import TemplateLibrary
from repro.cdfg.builder import build_main_cdfg
from repro.cdfg.graph import Graph
from repro.cdfg.interp import Interpreter
from repro.cdfg.statespace import StateSpace
from repro.core.allocation import AllocationStats, allocate
from repro.core.clustering import ClusterGraph, cluster_tasks
from repro.core.scheduling import Schedule, schedule_clusters
from repro.core.taskgraph import TaskGraph
from repro.multitile.mapping import MultiTileReport, map_multitile
from repro.obs import trace
from repro.transforms.base import PassStats
from repro.transforms.pipeline import simplify as run_simplify


class VerificationError(Exception):
    """The mapped program does not reproduce the program's semantics."""


@contextmanager
def _stage(timings: dict[str, float], name: str):
    """Time one pipeline stage into *timings* under a tracing span.

    The timing semantics are exactly the old inline
    ``perf_counter()`` pairs (``report.timings`` and ``--profile``
    output are unchanged); the ``pipeline.<name>`` span is additive
    and free while tracing is disabled.
    """
    with trace.span(f"pipeline.{name}"):
        started = time.perf_counter()
        try:
            yield
        finally:
            timings[name] = time.perf_counter() - started


@dataclass
class MappingReport:
    """Everything the flow produced for one program."""

    source: str | None
    original: Graph
    minimised: Graph
    pass_stats: PassStats | None
    taskgraph: TaskGraph
    clustered: ClusterGraph
    schedule: Schedule
    program: TileProgram
    alloc_stats: AllocationStats
    params: TileParams
    library: TemplateLibrary
    #: The optional multi-tile stage outcome (None for the pure
    #: single-tile flow the paper describes).
    multitile: MultiTileReport | None = None
    #: Per-stage wall-clock seconds (parse, transforms, taskgraph,
    #: cluster, schedule, allocate, multitile) — the breakdown
    #: ``fpfa-map map --profile`` prints.  Never part of the mapped
    #: artifacts or metrics.
    timings: dict[str, float] = field(default_factory=dict)

    # -- headline metrics -------------------------------------------------

    @property
    def n_tasks(self) -> int:
        return self.taskgraph.n_tasks

    @property
    def n_clusters(self) -> int:
        return self.clustered.n_clusters

    @property
    def n_levels(self) -> int:
        return self.schedule.n_levels

    @property
    def n_cycles(self) -> int:
        return self.program.n_cycles

    @property
    def serial_cycles(self) -> int:
        """Cycles a single ALU executing one op/cycle would need —
        the 1-ALU lower bound used for speedup."""
        return max(self.n_tasks, 1)

    @property
    def speedup_vs_serial(self) -> float:
        return self.serial_cycles / max(self.n_cycles, 1)

    def summary(self) -> str:
        lines = [
            f"tasks: {self.n_tasks}  clusters: {self.n_clusters} "
            f"(critical path {self.schedule.critical_path} levels)",
            f"schedule: {self.n_levels} levels "
            f"({self.schedule.inserted_levels} inserted), "
            f"ALU utilisation "
            f"{self.schedule.utilisation(self.params.n_pps):.0%}",
            f"program: {self.n_cycles} cycles "
            f"({self.program.n_stall_cycles} stalls, "
            f"{self.program.n_moves} moves), "
            f"speedup vs 1 ALU: {self.speedup_vs_serial:.2f}x",
            f"operand staging: {self.alloc_stats.reuse_hits} reused, "
            f"{self.alloc_stats.bypasses} written back directly, "
            f"{self.alloc_stats.staged_moves} moved from memory",
        ]
        return "\n".join(lines)


@dataclass
class Frontend:
    """One compiled frontend: source/graph → transformed CDFG.

    Immutable by convention — the backend only reads it — so one
    frontend can fan out to any number of :func:`map_frontend` calls
    (the DSE runner compiles one per unique (width, simplify,
    balance) combination and ships it to every worker).  Graphs
    pickle compactly: only the node tables travel; indexes are
    rebuilt on arrival.
    """

    original: Graph
    minimised: Graph
    pass_stats: PassStats | None
    #: Data-path width the transforms folded with; the backend tile
    #: must match (compile-time wrapping must equal ALU wrapping).
    width: int | None = None
    source: str | None = None
    #: Frontend stage seconds (parse, transforms); copied into every
    #: report built from this frontend.
    timings: dict[str, float] = field(default_factory=dict)


def prepare_graph(graph: Graph, *, simplify: bool = True,
                  balance: bool = False, width: int | None = None,
                  max_loop_iterations: int = 4096,
                  source: str | None = None) -> Frontend:
    """Run the transform frontend on a CDFG (step 2 of the flow).

    *graph* itself is never mutated; the returned frontend holds a
    pristine clone (for verification against the original semantics)
    and the minimised working copy.
    """
    original = graph.clone()
    pass_stats = None
    working = graph.clone()
    timings: dict[str, float] = {}
    with _stage(timings, "transforms"):
        if simplify:
            pass_stats = run_simplify(
                working, max_loop_iterations=max_loop_iterations,
                width=width)
        if balance:
            from repro.transforms.reassociate import \
                balance as run_balance
            run_balance(working)
            if simplify:  # clean up after the rebuild
                run_simplify(working,
                             max_loop_iterations=max_loop_iterations,
                             width=width)
    return Frontend(original=original, minimised=working,
                    pass_stats=pass_stats, width=width, source=source,
                    timings=timings)


def compile_frontend(source: str, *, width: int | None = None,
                     simplify: bool = True, balance: bool = False,
                     max_loop_iterations: int = 4096) -> Frontend:
    """Parse C *source* and run the transform frontend on ``main``."""
    parse_timing: dict[str, float] = {}
    with _stage(parse_timing, "parse"):
        graph = build_main_cdfg(source)
    frontend = prepare_graph(
        graph, simplify=simplify, balance=balance, width=width,
        max_loop_iterations=max_loop_iterations, source=source)
    frontend.timings = {**parse_timing, **frontend.timings}
    return frontend


def map_frontend(frontend: Frontend,
                 params: TileParams | None = None,
                 library: TemplateLibrary | None = None, *,
                 array: TileArrayParams | None = None,
                 **alloc_options) -> MappingReport:
    """Run the backend: cluster, schedule and allocate one compiled
    frontend onto one concrete tile (see :class:`MappingReport`).

    The frontend must have been compiled for ``params.width`` —
    compile-time constant folding wraps with the width, so a mismatch
    would change program semantics and is rejected outright.
    """
    params = params or TileParams()
    library = library or TemplateLibrary.two_level()
    if frontend.width != params.width:
        raise ValueError(
            f"frontend was compiled for width={frontend.width}, "
            f"tile has width={params.width}; recompile the frontend")
    timings = dict(frontend.timings)
    with _stage(timings, "taskgraph"):
        taskgraph = TaskGraph.from_cdfg(frontend.minimised)
    with _stage(timings, "cluster"):
        clustered = cluster_tasks(taskgraph, library)
    # Every cluster result is broadcast on one crossbar bus in its
    # execute cycle, so a level can hold at most min(PPs, buses)
    # clusters — with fewer buses than ALUs the scheduler serialises.
    capacity = min(params.n_pps, params.n_buses)
    with _stage(timings, "schedule"):
        schedule = schedule_clusters(clustered, n_pps=capacity)
    with _stage(timings, "allocate"):
        program, alloc_stats = allocate(clustered, schedule, params,
                                        **alloc_options)
    multitile = None
    if array is not None:
        with _stage(timings, "multitile"):
            multitile = map_multitile(clustered, array,
                                      capacity=capacity,
                                      base_levels=schedule.n_levels)
    return MappingReport(
        source=frontend.source, original=frontend.original,
        minimised=frontend.minimised, pass_stats=frontend.pass_stats,
        taskgraph=taskgraph, clustered=clustered,
        schedule=schedule, program=program, alloc_stats=alloc_stats,
        params=params, library=library, multitile=multitile,
        timings=timings)


def map_graph(graph: Graph, params: TileParams | None = None,
              library: TemplateLibrary | None = None, *,
              simplify: bool = True, balance: bool = False,
              source: str | None = None,
              max_loop_iterations: int = 4096,
              array: TileArrayParams | None = None,
              **alloc_options) -> MappingReport:
    """Map a CDFG onto one FPFA tile; see :class:`MappingReport`.

    ``balance=True`` additionally reassociates accumulation chains
    into balanced trees before mapping (shorter critical path; an
    extension beyond the paper — its Fig. 3 keeps the chain form).

    ``array`` additionally runs the multi-tile stage
    (:func:`repro.multitile.mapping.map_multitile`): the clustered
    graph is partitioned over ``array.n_tiles`` tiles and rescheduled
    with explicit inter-tile transfers; the outcome is attached as
    ``report.multitile``.  The single-tile artifacts and metrics are
    never altered by this stage — a 1-tile array is the identity.
    """
    params = params or TileParams()
    frontend = prepare_graph(
        graph, simplify=simplify, balance=balance, width=params.width,
        max_loop_iterations=max_loop_iterations, source=source)
    return map_frontend(frontend, params, library, array=array,
                        **alloc_options)


def map_source(source: str, params: TileParams | None = None,
               library: TemplateLibrary | None = None, *,
               simplify: bool = True, balance: bool = False,
               max_loop_iterations: int = 4096,
               array: TileArrayParams | None = None,
               **alloc_options) -> MappingReport:
    """Parse C *source* and map its ``main`` onto one FPFA tile."""
    params = params or TileParams()
    frontend = compile_frontend(
        source, width=params.width, simplify=simplify, balance=balance,
        max_loop_iterations=max_loop_iterations)
    return map_frontend(frontend, params, library, array=array,
                        **alloc_options)


def mapping_config(params: TileParams, library: str, *,
                   balance: bool = False,
                   array: TileArrayParams | None = None) -> dict:
    """The canonical ``config`` dict of one mapping invocation.

    This is the exact dict ``fpfa-map map --json`` embeds in its
    payload; :mod:`repro.service` builds the same dict from job
    requests so daemon responses stay bit-identical to the offline
    CLI.  Array keys appear only when the multi-tile stage runs,
    mirroring the CLI flags.
    """
    config = {"n_pps": params.n_pps, "n_buses": params.n_buses,
              "library": library, "balance": balance}
    if array is not None:
        config.update({"tiles": array.n_tiles,
                       "topology": array.topology,
                       "hop_latency": array.hop_latency,
                       "hop_energy": array.hop_energy,
                       "link_bandwidth": array.link_bandwidth})
    return config


def report_payload(report: MappingReport, config: dict, *,
                   file: str | None = None,
                   verified: bool | None = None,
                   metrics: dict | None = None) -> dict:
    """The canonical JSON payload for one mapping report.

    One shared serialisation for every surface that exports a mapped
    program — ``fpfa-map map --json``, the service daemon, the smoke
    harness — so "bit-identical" is a property of the code path, not
    a test assertion about two hand-maintained dict literals.
    *metrics* lets a caller that already extracted the metric dict
    avoid re-measuring; omitted, it is computed here.
    """
    # Local import: eval.metrics imports this module for the report
    # types, so the dependency must stay one-way at import time.
    from repro.eval.metrics import mapping_metrics, multitile_metrics
    payload = {
        "file": file,
        "config": config,
        "metrics": (mapping_metrics(report) if metrics is None
                    else metrics),
        "verified": verified,
    }
    if report.multitile is not None:
        payload["multitile"] = multitile_metrics(report)
    return payload


def random_input_state(report: MappingReport,
                       seed: int) -> StateSpace:
    """Deterministic random values for every input address *report*'s
    program reads — the canonical seed → verification-input mapping
    shared by the CLI and the DSE runner."""
    rng = random.Random(seed)
    state = StateSpace()
    for address in report.taskgraph.input_addresses():
        state = state.store(address, rng.randint(-99, 99))
    return state


def verify_mapping(report: MappingReport,
                   initial_state: StateSpace | None = None,
                   inputs: dict | None = None) -> StateSpace:
    """Check program-vs-interpreter equivalence for one input.

    Executes the original CDFG on the reference interpreter and the
    mapped program on the tile simulator, then requires the two final
    statespaces to be observationally equal (and function outputs to
    match).  Returns the simulated final state on success.
    """
    initial_state = initial_state or StateSpace()
    merged_initial = initial_state
    if inputs:
        # Mapped programs read parameters from memory at the scalar
        # address of the parameter name; the interpreter must start
        # from the same picture so the final states are comparable.
        for name, value in inputs.items():
            merged_initial = merged_initial.store(name, value)
    interpreter = Interpreter(width=report.params.width)
    expected = interpreter.run(report.original, merged_initial, inputs)
    simulated = simulate(report.program, merged_initial)
    expected_state = expected.state
    for slot, value in expected.outputs.items():
        address = f"__out_{slot}"
        got = simulated.fetch(address)
        if got != value:
            raise VerificationError(
                f"output {slot!r}: simulator produced {got}, "
                f"interpreter {value}")
        # Fold function outputs into the comparison baseline (they
        # live at pseudo-addresses in the mapped program's memory).
        expected_state = expected_state.store(address, value)
    if simulated != expected_state:
        differences = _diff_states(expected_state, simulated)
        raise VerificationError(
            "final statespace mismatch:\n" + "\n".join(differences))
    return simulated


def _diff_states(expected: StateSpace, actual: StateSpace) -> list[str]:
    lines = []
    addresses = set(dict(expected.items())) | set(dict(actual.items()))
    for address in sorted(addresses):
        want = expected.fetch(address)
        got = actual.fetch(address)
        if want != got:
            lines.append(f"  [{address}] expected {want}, got {got}")
    return lines or ["  (representation-only difference)"]
