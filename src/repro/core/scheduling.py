"""Phase 2 — scheduling clusters on the 5 physical ALUs (paper §VI-B).

"In the scheduling phase, the graph obtained from the clustering phase
is scheduled according to the maximum number of ALUs (in our case 5).
This means that at most 5 clusters can be on the same level.  In a
clustered graph, the longest path is referred to as critical path.
All nodes on the critical path have an incremental level number.  The
clusters that do not belong to any critical path can be moved up and
down within the range where the dependence relations among the tasks
are satisfied.  Here we adopt a heuristic procedure in which the
clusters are scheduled level by level.  The complexity is thus linear
to the number of clusters."

Implementation: classic ASAP/ALAP levelling gives each cluster its
mobility range; levels are then filled in order.  At each level the
ready clusters are taken critical-first (slack 0, i.e. on a critical
path), others by increasing slack — a non-critical cluster that does
not fit is simply "moved down" within its dependence range.  When even
critical clusters overflow the 5 slots, the surplus spills into a
freshly *inserted level* and every downstream level shifts, exactly
the Fig. 4 scenario.  One bucket-queue pass over clusters and edges:
O(V + E).

Invariants
----------
* Dependences map to strictly increasing levels: a cluster's level
  is greater than every predecessor's.
* No level holds more than ``n_pps`` clusters, and every cluster is
  placed exactly once.
* The schedule is deterministic: the ready queue is ordered by
  (slack, ASAP, id), all total orders.
* ``n_levels >= critical_path`` always; the difference is exactly
  Fig. 4's inserted levels.
* The same (slack, ASAP, id) priority drives the multi-tile array
  scheduler (:mod:`repro.multitile.schedule`), which therefore
  degenerates to this leveller on a 1-tile array.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clustering import Cluster, ClusterGraph


@dataclass
class ScheduledCluster:
    """One cluster placed at (level, ALU index)."""

    cluster: Cluster
    level: int
    pp: int


@dataclass
class Schedule:
    """The levelled schedule produced by phase 2."""

    #: levels[t] = clusters executing in level t, ALU order.
    levels: list[list[ScheduledCluster]] = field(default_factory=list)
    #: cluster id -> its placement.
    placement: dict[int, ScheduledCluster] = field(default_factory=dict)
    #: length of the clustered graph's critical path (in levels).
    critical_path: int = 0
    #: per-cluster slack (ALAP - ASAP) before capacity was applied.
    slack: dict[int, int] = field(default_factory=dict)

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def inserted_levels(self) -> int:
        """Levels beyond the critical path — Fig. 4's inserted levels."""
        return self.n_levels - self.critical_path

    def level_of(self, cluster_id: int) -> int:
        return self.placement[cluster_id].level

    def pp_of(self, cluster_id: int) -> int:
        return self.placement[cluster_id].pp

    def utilisation(self, n_pps: int) -> float:
        if not self.levels:
            return 0.0
        placed = sum(len(level) for level in self.levels)
        return placed / (n_pps * len(self.levels))

    def table(self) -> str:
        """Fig. 4-style rendering: one row per level."""
        lines = []
        for index, level in enumerate(self.levels):
            names = "  ".join(f"Clu{item.cluster.id}" for item in level)
            lines.append(f"Level{index}: {names}")
        return "\n".join(lines)


def _asap_levels(graph: ClusterGraph,
                 predecessors: dict[int, set[int]]) -> dict[int, int]:
    asap: dict[int, int] = {}
    for cluster_id in topo_cluster_ids(graph, predecessors):
        preds = predecessors[cluster_id]
        asap[cluster_id] = (max(asap[p] for p in preds) + 1) if preds \
            else 0
    return asap


def _alap_levels(graph: ClusterGraph, successors: dict[int, set[int]],
                 depth: int) -> dict[int, int]:
    alap: dict[int, int] = {}
    for cluster_id in reversed(topo_cluster_ids(graph,
                                         _invert(successors, graph))):
        succs = successors[cluster_id]
        alap[cluster_id] = (min(alap[s] for s in succs) - 1) if succs \
            else depth - 1
    return alap


def _invert(successors: dict[int, set[int]],
            graph: ClusterGraph) -> dict[int, set[int]]:
    predecessors: dict[int, set[int]] = {cid: set()
                                         for cid in graph.clusters}
    for cluster_id, succs in successors.items():
        for successor in succs:
            predecessors[successor].add(cluster_id)
    return predecessors


def topo_cluster_ids(graph: ClusterGraph,
                     predecessors: dict[int, set[int]]) -> list[int]:
    """Deterministic topological order of the cluster ids (smallest
    ready id first) — shared by the levelers and the multi-tile
    partitioner.  Raises on a cyclic cluster graph."""
    import heapq
    indegree = {cid: len(preds) for cid, preds in predecessors.items()}
    successors: dict[int, list[int]] = {cid: [] for cid in graph.clusters}
    for cid, preds in predecessors.items():
        for pred in preds:
            successors[pred].append(cid)
    ready = [cid for cid, degree in indegree.items() if degree == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        cid = heapq.heappop(ready)
        order.append(cid)
        for successor in successors[cid]:
            indegree[successor] -= 1
            if indegree[successor] == 0:
                heapq.heappush(ready, successor)
    if len(order) != len(graph.clusters):
        raise ValueError("cycle in cluster graph")
    return order


def cluster_mobility(graph: ClusterGraph) -> tuple[dict, dict, dict, int]:
    """ASAP level, ALAP level, slack per cluster, and graph depth.

    The mobility quadruple drives both this module's single-tile level
    scheduler and the multi-tile array scheduler
    (:mod:`repro.multitile.schedule`): slack-0 clusters sit on a
    critical path and are always placed first.
    """
    predecessors = graph.predecessors()
    successors = graph.successors()
    asap = _asap_levels(graph, predecessors)
    depth = (max(asap.values()) + 1) if asap else 0
    alap = _alap_levels(graph, successors, depth)
    slack = {cid: alap[cid] - asap[cid] for cid in graph.clusters}
    return asap, alap, slack, depth


def schedule_clusters(graph: ClusterGraph, n_pps: int = 5) -> Schedule:
    """Level-schedule *graph* with at most *n_pps* clusters per level."""
    predecessors = graph.predecessors()
    successors = graph.successors()
    asap, _, slack, depth = cluster_mobility(graph)

    schedule = Schedule(critical_path=depth, slack=slack)

    # Incremental ready tracking keeps the pass O(V log V + E) — the
    # paper's "complexity is thus linear to the number of clusters".
    # Priority: critical clusters first (slack 0), then by slack, then
    # by ASAP level, id as the deterministic tie-break.
    import heapq
    pending = {cid: len(preds) for cid, preds in predecessors.items()}
    ready = [(slack[cid], asap[cid], cid)
             for cid, count in pending.items() if count == 0]
    heapq.heapify(ready)
    remaining = len(graph.clusters)
    level = 0
    while remaining:
        placed = []
        for pp in range(min(n_pps, len(ready))):
            __, __, cid = heapq.heappop(ready)
            item = ScheduledCluster(cluster=graph.clusters[cid],
                                    level=level, pp=pp)
            schedule.placement[cid] = item
            placed.append(item)
        remaining -= len(placed)
        # Successors become eligible only at the *next* level (a
        # dependence means strictly-earlier level), so release them
        # after this level's picks are committed.
        for item in placed:
            for successor in successors[item.cluster.id]:
                pending[successor] -= 1
                if pending[successor] == 0:
                    heapq.heappush(ready, (slack[successor],
                                           asap[successor], successor))
        schedule.levels.append(placed)
        level += 1
        if level > 4 * (len(graph.clusters) + 1):
            raise RuntimeError("scheduler failed to make progress")
    return schedule
