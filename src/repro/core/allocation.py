"""Phase 3 — resource allocation (paper §VI-C, Fig. 5).

    function ResourceAllocation(G) {
        for each level in G do Allocate(level);
    }
    function Allocate(currentLevel) {
        Allocate ALUs of the current clock cycle
        for each output do store it to a memory;
        for each input of current level
        do try to move it to proper register at the clock cycle which
           is four steps before; If failed, do it three steps before;
           then two steps before; one step before.
        if some inputs are not moved successfully
        then insert one or more clock cycles before the current one to
             load inputs
    }

The allocator walks the schedule level by level and builds the
per-cycle tile program under every resource limit the paper names
(§VI-C): register bank sizes, memory sizes, crossbar buses and
memory/register-bank ports.  Exactly as in Fig. 5:

* each level becomes one execute cycle; its clusters' ALUs are
  configured on their scheduled PPs;
* every live cluster result is stored to a memory in its execute
  cycle — the memory is chosen in the first consumer's PP (*locality
  of reference*), never a word that still holds live input data;
* every leaf operand must sit in the *proper* register bank (leaf i
  feeds ALU input i, so bank Ra..Rd) before the cycle starts.  The
  allocator tries, in order: (1) *reuse* — the value already resides
  in the right bank; (2) *direct write-back* — the producing ALU
  latches its result straight into the consumer's input register via
  the crossbar (Fig. 1: "the crossbar enables an ALU to write back
  their result to any register or memory within a tile"); (3) a
  *staging move* from memory (or an immediate from the control unit)
  placed 4, then 3, 2, 1 cycles ahead of the consumer;
* when an operand cannot be staged, the level is rolled back, a stall
  (load) cycle is inserted before it, and the level is replanned —
  "insert one or more clock cycles before the current one".

Backtracking is journal-based: every mutation a level attempt makes
(a claimed register, a booked bus, a drafted move, a residency-table
entry) pushes one undo record onto :class:`_Journal`, and a failed
attempt rolls those records back in reverse.  A retry therefore costs
O(changes the attempt made) — not O(whole allocator state) — and the
per-level retry loop copies nothing: no register-file deep copy, no
``mem_words`` set copies, no cycle-draft clones.

Options ``enable_bypass`` / ``enable_reuse`` / ``stage_window`` exist
for the locality ablation (EXT-C): disabling them yields the
memory-only staging baseline.

Invariants
----------
* The emitted program respects *every* per-cycle resource limit of
  :class:`repro.arch.params.TileParams` — bank/memory sizes, bus
  count, read/write ports; the fully-checked simulator would raise
  on any violation, and the property tests drive it across random
  tiles.
* A value is never read in the cycle it is written (end-of-cycle
  commit), and a staged operand is staged at most
  ``stage_window`` cycles ahead.
* Allocation is deterministic: candidate locations are tried in a
  fixed order, so the same schedule and params always yield the
  same program, stall count and move count.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field

from repro.arch.control import (
    AluConfig,
    Cycle,
    ImmSource,
    MemLoc,
    Move,
    RegLoc,
    TileProgram,
)
from repro.arch.params import TileParams
from repro.cdfg.ops import Address
from repro.core.clustering import Cluster, ClusterGraph
from repro.core.scheduling import Schedule, ScheduledCluster
from repro.core.taskgraph import Operand, OperandKind


class AllocationError(Exception):
    """Raised when a schedule cannot be allocated at all."""


class _LevelRetry(Exception):
    """Internal: the pending level needs a stall cycle inserted."""


class _Journal:
    """Undo log for one level attempt.

    Each entry is a zero-argument callable reverting one mutation.
    ``rollback(mark)`` pops and runs entries newest-first until the
    journal is back at *mark*, restoring exactly the state the attempt
    started from in O(changes) — the replacement for the old
    whole-state ``_snapshot``/``_restore`` deep copies.
    """

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: list = []

    def __len__(self) -> int:
        return len(self._entries)

    def mark(self) -> int:
        return len(self._entries)

    def record(self, undo) -> None:
        self._entries.append(undo)

    def rollback(self, mark: int) -> None:
        entries = self._entries
        while len(entries) > mark:
            entries.pop()()

    def commit(self) -> None:
        """Drop all entries (the attempt succeeded; nothing to undo)."""
        self._entries.clear()


#: Identity of a value for residency tracking.
ValueKey = tuple


def _value_key(operand: Operand, owner: dict[int, int]) -> ValueKey:
    if operand.kind is OperandKind.CONST:
        return ("const", operand.value)
    if operand.kind is OperandKind.MEM:
        return ("mem", operand.value)
    return ("cluster", owner[operand.task_id])


@dataclass
class _Slot:
    """One physical register of one input bank."""

    value: ValueKey | None = None
    write_cycle: int = -1
    busy_until: int = -1


@dataclass
class _CycleDraft:
    """Mutable bookkeeping for one cycle being planned."""

    alu_configs: dict[int, AluConfig] = field(default_factory=dict)
    moves: list[Move] = field(default_factory=list)
    bus: set = field(default_factory=set)
    mem_reads: dict = field(default_factory=dict)   # (pp,mem) -> {addr}
    mem_writes: dict = field(default_factory=dict)  # (pp,mem) -> {addr}
    bank_writes: dict = field(default_factory=dict)  # (pp,bank) -> int
    is_stall: bool = False


@dataclass
class AllocationStats:
    """What the allocator did (feeds the locality experiment)."""

    reuse_hits: int = 0
    bypasses: int = 0
    staged_moves: int = 0
    copy_moves: int = 0
    stall_cycles: int = 0
    stores: int = 0

    def operand_events(self) -> int:
        return self.reuse_hits + self.bypasses + self.staged_moves


class Allocator:
    """Allocates one schedule onto one tile."""

    def __init__(self, clustered: ClusterGraph, schedule: Schedule,
                 params: TileParams | None = None, *,
                 enable_bypass: bool = True, enable_reuse: bool = True,
                 stage_window: int | None = None,
                 max_stalls_per_level: int = 64):
        self.clustered = clustered
        self.schedule = schedule
        self.params = params or TileParams()
        self.enable_bypass = enable_bypass
        self.enable_reuse = enable_reuse
        self.stage_window = stage_window or self.params.max_stage_ahead
        self.max_stalls_per_level = max_stalls_per_level
        self.stats = AllocationStats()

        # -- mutable planning state (journal-rolled-back on retries) --
        self._journal = _Journal()
        self.cycles: list[_CycleDraft] = []
        self.banks: dict[tuple[int, int], list[_Slot]] = {
            (pp, bank): [_Slot() for _ in range(self.params.regs_per_bank)]
            for pp in range(self.params.n_pps)
            for bank in range(self.params.banks_per_pp)}
        self.mem_words: dict[tuple[int, int], set[Address]] = {
            (pp, mem): set()
            for pp in range(self.params.n_pps)
            for mem in range(self.params.memories_per_pp)}
        self.value_in_memory: dict[ValueKey, tuple[MemLoc, int]] = {}
        self.cluster_exec_cycle: dict[int, int] = {}
        self.data_layout: dict[Address, MemLoc] = {}
        self.output_layout: dict[Address, MemLoc] = {}

        self._prepare()

    # -- setup ------------------------------------------------------------

    def _prepare(self) -> None:
        """Compute per-cluster output addresses, consumers, layout."""
        owner = self.clustered.owner
        self.cluster_outputs: dict[int, list[Address]] = {}
        for store in self.clustered.stores:
            if store.source.kind is OperandKind.TASK:
                cluster_id = owner[store.source.task_id]
                self.cluster_outputs.setdefault(cluster_id, []).append(
                    store.address)
        successors = self.clustered.successors()
        self.first_consumer_pp: dict[int, int | None] = {}
        for cluster_id in self.clustered.clusters:
            consumers = sorted(
                successors[cluster_id],
                key=lambda cid: (self.schedule.level_of(cid),
                                 self.schedule.pp_of(cid)))
            self.first_consumer_pp[cluster_id] = (
                self.schedule.pp_of(consumers[0]) if consumers else None)
        self._layout_inputs()

    def _layout_inputs(self) -> None:
        """Place every initial-memory word near its first consumer."""
        wanted: dict[Address, int] = {}
        for level in self.schedule.levels:
            for item in level:
                for operand in item.cluster.operands:
                    if operand.kind is OperandKind.MEM and \
                            operand.value not in wanted:
                        wanted[operand.value] = item.pp
        for store in self.clustered.stores:
            if store.source.kind is OperandKind.MEM and \
                    store.source.value not in wanted:
                wanted[store.source.value] = 0
        toggle: dict[int, int] = {}
        n_mems = self.params.memories_per_pp
        for address in sorted(wanted):
            preferred_pp = wanted[address]
            placed = False
            for pp in self._pp_preference(preferred_pp):
                start = toggle.get(pp, 0)
                for offset in range(n_mems):
                    candidate = (start + offset) % n_mems
                    words = self.mem_words[(pp, candidate)]
                    if len(words) < self.params.memory_words:
                        loc = MemLoc(pp, candidate, address)
                        self.data_layout[address] = loc
                        words.add(address)
                        self.value_in_memory[("mem", address)] = (loc, 0)
                        toggle[pp] = (candidate + 1) % n_mems
                        placed = True
                        break
                if placed:
                    break
            if not placed:
                raise AllocationError(
                    f"tile memories cannot hold input word {address}")

    def _pp_preference(self, preferred: int | None) -> list[int]:
        pps = list(range(self.params.n_pps))
        if preferred is None:
            return pps
        return [preferred] + [pp for pp in pps if pp != preferred]

    # -- the undo journal ----------------------------------------------------
    #
    # A failed level attempt only ever mutates: the appended execute
    # cycle, the `window` cycles before it (staging moves and direct
    # write-backs are both window-bounded), a handful of register
    # slots, and a few residency-dict entries.  Each such mutation
    # goes through one of the helpers below, which records its exact
    # inverse in the journal; `_LevelRetry` rolls the journal back.
    # A retry is therefore O(changes the attempt made) — whole-program
    # allocation stays linear in the number of clusters (the paper's
    # §VI-C complexity claim) with no per-retry deep copies at all.

    def _j_append_cycle(self) -> _CycleDraft:
        draft = _CycleDraft()
        self.cycles.append(draft)
        self._journal.record(self.cycles.pop)
        return draft

    def _j_list_append(self, items: list, value) -> None:
        items.append(value)
        self._journal.record(items.pop)

    def _j_set_add(self, values: set, element) -> None:
        if element not in values:
            values.add(element)
            self._journal.record(
                lambda: values.discard(element))

    def _j_dict_set(self, table: dict, key, value) -> None:
        if key in table:
            old = table[key]
            self._journal.record(
                lambda: table.__setitem__(key, old))
        else:
            self._journal.record(
                lambda: table.pop(key, None))
        table[key] = value

    def _j_slot_write(self, slot: _Slot, value: ValueKey | None,
                      write_cycle: int, busy_until: int) -> None:
        old = (slot.value, slot.write_cycle, slot.busy_until)

        def undo():
            slot.value, slot.write_cycle, slot.busy_until = old

        self._journal.record(undo)
        slot.value = value
        slot.write_cycle = write_cycle
        slot.busy_until = busy_until

    # -- main ------------------------------------------------------------------

    def allocate(self) -> TileProgram:
        """Run the Fig. 5 procedure over every scheduled level."""
        for level in self.schedule.levels:
            self._allocate_level(level)
        self._emit_copy_stores()
        return self._to_program()

    def _allocate_level(self, level: list[ScheduledCluster]) -> None:
        stalls = 0
        while True:
            mark = self._journal.mark()
            stats_before = copy.copy(self.stats)
            try:
                # Fig. 5 stages 4..1 cycles ahead; when inserted load
                # cycles pile up, the window widens with them so the
                # fresh bus/port capacity is actually reachable (else
                # a level needing more moves than window x buses could
                # never complete).
                self._plan_level(level, self.stage_window + stalls)
                self._journal.commit()
                return
            except _LevelRetry:
                self._journal.rollback(mark)
                self.stats = stats_before
                # The inserted stall outlives this attempt's rollback
                # scope — the next attempt plans over it — so it is
                # appended outside the journal.
                stall = _CycleDraft(is_stall=True)
                self.cycles.append(stall)
                self.stats.stall_cycles += 1
                stalls += 1
                if stalls > self.max_stalls_per_level:
                    raise AllocationError(
                        f"level with clusters "
                        f"{[item.cluster.id for item in level]} cannot "
                        f"be staged within {stalls} inserted cycles")

    def _plan_level(self, level: list[ScheduledCluster],
                    window: int | None = None) -> None:
        window = window or self.stage_window
        exec_cycle = len(self.cycles)
        draft = self._j_append_cycle()
        for item in level:
            cluster = item.cluster
            operand_locs = [
                self._stage_operand(operand, item.pp, leaf, exec_cycle,
                                    window)
                for leaf, operand in enumerate(cluster.operands)]
            dests = self._plan_store(cluster, item.pp, exec_cycle)
            config = AluConfig(pp=item.pp, shape=cluster.shape,
                               ops=cluster.ops, operands=operand_locs,
                               dests=dests, label=f"Clu{cluster.id}")
            self._j_dict_set(draft.alu_configs, item.pp, config)
            if dests:
                self._j_set_add(draft.bus, ("alu", item.pp))
            self._j_dict_set(self.cluster_exec_cycle, cluster.id,
                             exec_cycle)

    # -- operand staging -------------------------------------------------------

    def _stage_operand(self, operand: Operand, pp: int, bank: int,
                       exec_cycle: int, window: int | None = None
                       ) -> RegLoc:
        window = window or self.stage_window
        if bank >= self.params.banks_per_pp:
            raise AllocationError(
                f"cluster needs leaf {bank}, tile has only "
                f"{self.params.banks_per_pp} input banks")
        key = _value_key(operand, self.clustered.owner)
        slots = self.banks[(pp, bank)]

        if self.enable_reuse:
            for index, slot in enumerate(slots):
                if slot.value == key and slot.write_cycle <= exec_cycle - 1:
                    self._j_slot_write(
                        slot, slot.value, slot.write_cycle,
                        max(slot.busy_until, exec_cycle))
                    self.stats.reuse_hits += 1
                    return RegLoc(pp, bank, index)

        if self.enable_bypass and key[0] == "cluster":
            bypass = self._try_bypass(key[1], pp, bank, exec_cycle,
                                      window)
            if bypass is not None:
                self.stats.bypasses += 1
                return bypass

        return self._stage_via_move(key, pp, bank, exec_cycle, window)

    def _try_bypass(self, producer_id: int, pp: int, bank: int,
                    exec_cycle: int, window: int) -> RegLoc | None:
        """Latch the producer's result straight into the input bank.

        Like memory staging, write-back is window-bounded: a result
        needed further ahead than the staging window comes back from
        memory instead of squatting in a register (and level retries
        stay O(window))."""
        producer_cycle = self.cluster_exec_cycle.get(producer_id)
        if producer_cycle is None or producer_cycle >= exec_cycle:
            return None
        if producer_cycle < exec_cycle - window:
            return None
        draft = self.cycles[producer_cycle]
        producer_pp = self.schedule.pp_of(producer_id)
        config = draft.alu_configs.get(producer_pp)
        if config is None or config.label != f"Clu{producer_id}":
            return None
        used = draft.bank_writes.get((pp, bank), 0)
        if used >= self.params.bank_write_ports:
            return None
        slot_index = self._claim_slot(pp, bank, producer_cycle,
                                      exec_cycle,
                                      ("cluster", producer_id))
        if slot_index is None:
            return None
        loc = RegLoc(pp, bank, slot_index)
        self._j_list_append(config.dests, loc)
        self._j_set_add(draft.bus, ("alu", producer_pp))
        self._j_dict_set(draft.bank_writes, (pp, bank), used + 1)
        return loc

    def _stage_via_move(self, key: ValueKey, pp: int, bank: int,
                        exec_cycle: int, window: int) -> RegLoc:
        """Fig. 5: try 4, 3, 2, then 1 cycles ahead of the consumer."""
        source, available = self._source_of(key)
        window_start = max(available, exec_cycle - window)
        for cycle in range(window_start, exec_cycle):
            loc = self._try_move_at(cycle, source, key, pp, bank,
                                    exec_cycle)
            if loc is not None:
                self.stats.staged_moves += 1
                return loc
        raise _LevelRetry()

    def _try_move_at(self, cycle: int, source, key: ValueKey, pp: int,
                     bank: int, exec_cycle: int) -> RegLoc | None:
        draft = self.cycles[cycle]
        bus_token = ("move", source)
        if bus_token not in draft.bus and \
                len(draft.bus) >= self.params.n_buses:
            return None
        if isinstance(source, MemLoc):
            reads = draft.mem_reads.setdefault((source.pp, source.mem),
                                               set())
            if source.addr not in reads and \
                    len(reads) >= self.params.mem_read_ports:
                return None
        used = draft.bank_writes.get((pp, bank), 0)
        if used >= self.params.bank_write_ports:
            return None
        slot_index = self._claim_slot(pp, bank, cycle, exec_cycle, key)
        if slot_index is None:
            return None
        loc = RegLoc(pp, bank, slot_index)
        self._j_list_append(draft.moves, Move(source=source, dest=loc))
        self._j_set_add(draft.bus, bus_token)
        if isinstance(source, MemLoc):
            self._j_set_add(draft.mem_reads[(source.pp, source.mem)],
                            source.addr)
        self._j_dict_set(draft.bank_writes, (pp, bank), used + 1)
        return loc

    def _claim_slot(self, pp: int, bank: int, write_cycle: int,
                    use_cycle: int, key: ValueKey) -> int | None:
        """Find a register free for [write_cycle, use_cycle]."""
        slots = self.banks[(pp, bank)]
        best_index = None
        best_busy = None
        for index, slot in enumerate(slots):
            if slot.busy_until <= write_cycle and \
                    slot.write_cycle <= write_cycle:
                if best_busy is None or slot.busy_until < best_busy:
                    best_index = index
                    best_busy = slot.busy_until
        if best_index is None:
            return None
        self._j_slot_write(slots[best_index], key, write_cycle,
                           use_cycle)
        return best_index

    def _source_of(self, key: ValueKey):
        if key[0] == "const":
            return ImmSource(key[1]), 0
        entry = self.value_in_memory.get(key)
        if entry is None:
            raise AllocationError(f"value {key} is nowhere in memory")
        return entry

    # -- result stores -----------------------------------------------------------

    @staticmethod
    def _shadow(address: Address) -> Address:
        """A distinct word key for an output whose logical address
        also holds live input data (the data_layout word must stay
        readable; output_layout redirects readers to the shadow)."""
        return Address(f"$out${address.name}", address.offset)

    def _plan_store(self, cluster: Cluster, pp: int,
                    exec_cycle: int) -> list:
        outputs = self.cluster_outputs.get(cluster.id, [])
        has_consumers = self.first_consumer_pp[cluster.id] is not None
        if not outputs and not has_consumers:
            return []
        address = outputs[0] if outputs else Address(f"$t{cluster.id}")
        preferred_pp = self.first_consumer_pp[cluster.id]
        if preferred_pp is None:
            preferred_pp = pp
        draft = self.cycles[exec_cycle]
        forbidden = self.data_layout.get(address)
        candidate_words: list[tuple[Address, bool]] = [(address, True)]
        if forbidden is not None:
            # fallback: a shadow word may share even the input's own
            # memory (needed on tiles with a single memory)
            candidate_words.append((self._shadow(address), False))
        for word, respect_forbidden in candidate_words:
            for candidate_pp in self._pp_preference(preferred_pp):
                for mem in range(self.params.memories_per_pp):
                    loc = MemLoc(candidate_pp, mem, word)
                    if respect_forbidden and forbidden is not None and \
                            (loc.pp, loc.mem) == (forbidden.pp,
                                                  forbidden.mem):
                        continue
                    writes = draft.mem_writes.setdefault(
                        (candidate_pp, mem), set())
                    if len(writes) >= self.params.mem_write_ports:
                        continue
                    words = self.mem_words[(candidate_pp, mem)]
                    if word not in words and \
                            len(words) >= self.params.memory_words:
                        continue
                    self._j_set_add(writes, word)
                    self._j_set_add(words, word)
                    self._j_dict_set(self.value_in_memory,
                                     ("cluster", cluster.id),
                                     (loc, exec_cycle + 1))
                    if outputs:
                        self._j_dict_set(self.output_layout,
                                         outputs[0], loc)
                    self.stats.stores += 1
                    return [loc]
        raise _LevelRetry()

    def _emit_copy_stores(self) -> None:
        """Outputs whose value is not a fresh cluster result (constants,
        copied inputs, secondary addresses of a multiply-stored result)
        become plain crossbar moves after/between the compute cycles."""
        owner = self.clustered.owner
        for store in self.clustered.stores:
            if store.source.kind is OperandKind.TASK:
                cluster_id = owner[store.source.task_id]
                primary = self.cluster_outputs[cluster_id][0]
                if store.address == primary:
                    continue  # written by the execute-cycle store
                source, available = self._source_of(
                    ("cluster", cluster_id))
            else:
                source, available = self._source_of(
                    _value_key(store.source, owner))
            self._emit_copy_move(store.address, source, available)

    def _emit_copy_move(self, address: Address, source,
                        available: int) -> None:
        forbidden = self.data_layout.get(address)
        for attempt, cycle_index in enumerate(
                itertools.count(available)):
            if attempt > len(self.cycles) + 1000:
                raise AllocationError(
                    f"cannot place copy store of {address}")
            if cycle_index >= len(self.cycles):
                self.cycles.append(_CycleDraft(is_stall=False))
            draft = self.cycles[cycle_index]
            bus_token = ("move", source)
            if bus_token not in draft.bus and \
                    len(draft.bus) >= self.params.n_buses:
                continue
            if isinstance(source, MemLoc):
                reads = draft.mem_reads.setdefault(
                    (source.pp, source.mem), set())
                if source.addr not in reads and \
                        len(reads) >= self.params.mem_read_ports:
                    continue
            if self._try_copy_dest(draft, address, source, forbidden,
                                   bus_token):
                return

    def _try_copy_dest(self, draft: _CycleDraft, address: Address,
                       source, forbidden, bus_token) -> bool:
        candidate_words: list[tuple[Address, bool]] = [(address, True)]
        candidate_words.append((self._shadow(address), False))
        for word, respect_forbidden in candidate_words:
            for pp in self._pp_preference(0):
                for mem in range(self.params.memories_per_pp):
                    if respect_forbidden and forbidden is not None and \
                            (pp, mem) == (forbidden.pp, forbidden.mem):
                        continue
                    if isinstance(source, MemLoc) and \
                            (pp, mem, word) == (source.pp, source.mem,
                                                source.addr):
                        continue
                    writes = draft.mem_writes.setdefault((pp, mem),
                                                         set())
                    if word in writes or \
                            len(writes) >= self.params.mem_write_ports:
                        continue
                    words = self.mem_words[(pp, mem)]
                    if word not in words and \
                            len(words) >= self.params.memory_words:
                        continue
                    loc = MemLoc(pp, mem, word)
                    draft.moves.append(Move(source=source, dest=loc))
                    draft.bus.add(bus_token)
                    if isinstance(source, MemLoc):
                        draft.mem_reads[(source.pp, source.mem)].add(
                            source.addr)
                    writes.add(word)
                    words.add(word)
                    self.output_layout[address] = loc
                    self.stats.copy_moves += 1
                    return True
        return False

    # -- emission -------------------------------------------------------------------

    def _to_program(self) -> TileProgram:
        cycles = []
        for draft in self.cycles:
            configs = [draft.alu_configs[pp]
                       for pp in sorted(draft.alu_configs)]
            cycles.append(Cycle(alu_configs=configs, moves=draft.moves,
                                is_stall=draft.is_stall))
        # Drop trailing fully idle cycles (can appear when a stall was
        # inserted and the replan no longer needed its slots).
        while cycles and not cycles[-1].alu_configs \
                and not cycles[-1].moves:
            cycles.pop()
        return TileProgram(params=self.params, cycles=cycles,
                           data_layout=dict(self.data_layout),
                           output_layout=dict(self.output_layout))


def allocate(clustered: ClusterGraph, schedule: Schedule,
             params: TileParams | None = None,
             **options) -> tuple[TileProgram, AllocationStats]:
    """Allocate *schedule*; returns (program, stats)."""
    allocator = Allocator(clustered, schedule, params, **options)
    program = allocator.allocate()
    return program, allocator.stats
