"""Declarative design spaces over the mapping flow's free parameters.

A *dimension* is one named axis with an ordered list of candidate
values.  Three kinds of names are legal:

* any field of :class:`repro.arch.params.TileParams` (``n_pps``,
  ``n_buses``, ``mem_read_ports``, ...) — swept architecture
  parameters;
* ``library`` — a stock :class:`repro.arch.templates.TemplateLibrary`
  name (``single-op``, ``two-level``, ``mac``);
* a ``map_graph`` keyword option (``balance``, ``simplify``) —
  swept transform choices;
* an array field (``tiles``, ``topology``, ``hop_latency``,
  ``hop_energy``, ``link_bandwidth``) — the multi-tile axis; any of
  them makes the point run the multi-tile stage
  (:mod:`repro.multitile`) with the corresponding
  :class:`repro.arch.tilearray.TileArrayParams`.

A :class:`DesignPoint` is one frozen assignment; it knows how to
materialise its :class:`TileParams` / library / array and how to
serialise itself to a canonical JSON-able dict (the unit the result
cache hashes).  A :class:`DesignSpace` enumerates points as a full
grid, a seeded random sample, or wraps an explicit point list, and
produces the one-step neighbourhoods the hill-climb strategy walks.

Invariants
----------
* Name and value validation happens at construction: an unknown
  dimension name, a mistyped value, an unknown topology/library or
  an out-of-range array field raises :class:`SpaceError` *before*
  any sweep runs.  :class:`TileParams` *feasibility* (e.g.
  ``n_pps=0``, or combinations the allocator cannot satisfy) is
  deliberately left to evaluation time, where it surfaces as an
  ``{"ok": False}`` record instead of aborting the sweep.
* Point identity is canonical: ``(name, value)`` tuples are sorted,
  so points built from dicts in any order compare, hash and
  serialise identically.
* A point without array dimensions serialises exactly as it did
  before the multi-tile axis existed (no ``array`` key), keeping
  every previously-minted cache key valid.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import random
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.arch.params import TileParams
from repro.arch.templates import TemplateLibrary
from repro.arch.tilearray import TOPOLOGIES, TileArrayParams

#: TileParams field names that may appear as dimensions.
TILE_FIELDS = tuple(field.name for field in
                    dataclasses.fields(TileParams))

#: ``map_graph`` keyword options that may appear as dimensions.
OPTION_FIELDS = ("balance", "simplify")

#: Array-level dimension names -> the TileArrayParams field each one
#: sets (the multi-tile axis of the design space).
ARRAY_FIELDS = {
    "tiles": "n_tiles",
    "topology": "topology",
    "hop_latency": "hop_latency",
    "hop_energy": "hop_energy",
    "link_bandwidth": "link_bandwidth",
}

#: The dimension selecting the ALU data-path template library.
LIBRARY_FIELD = "library"

DEFAULT_LIBRARY = "two-level"


class SpaceError(ValueError):
    """A dimension name or value the flow cannot realise."""


def _validate_dimension(name: str, values: Sequence) -> tuple:
    # Dedupe preserving order: repeated values would make size/grid
    # overcount and let sample() return "distinct" duplicates.
    values = tuple(dict.fromkeys(values))
    if not values:
        raise SpaceError(f"dimension {name!r} has no values")
    if name == LIBRARY_FIELD:
        stock = TemplateLibrary.stock()
        for value in values:
            if value not in stock:
                raise SpaceError(
                    f"unknown template library {value!r}; stock: "
                    f"{', '.join(sorted(stock))}")
    elif name in OPTION_FIELDS:
        for value in values:
            if not isinstance(value, bool):
                raise SpaceError(
                    f"option dimension {name!r} takes booleans, "
                    f"got {value!r}")
    elif name in TILE_FIELDS:
        # Fail before the sweep, not as N cryptic failure records.
        for value in values:
            is_int = isinstance(value, int) and \
                not isinstance(value, bool)
            if not (is_int or (name == "width" and value is None)):
                raise SpaceError(
                    f"tile dimension {name!r} takes integers, "
                    f"got {value!r}")
    elif name == "topology":
        for value in values:
            if value not in TOPOLOGIES:
                raise SpaceError(
                    f"unknown topology {value!r}; known: "
                    f"{', '.join(TOPOLOGIES)}")
    elif name in ARRAY_FIELDS:
        for value in values:
            is_number = isinstance(value, (int, float)) and \
                not isinstance(value, bool)
            if not is_number or (name != "hop_energy"
                                 and not isinstance(value, int)):
                raise SpaceError(
                    f"array dimension {name!r} takes "
                    f"{'numbers' if name == 'hop_energy' else 'integers'}"
                    f", got {value!r}")
            # Range-check up front: an out-of-range array value would
            # otherwise fail every point of the sweep one by one.
            if name == "hop_energy":
                if value < 0:
                    raise SpaceError(
                        f"array dimension 'hop_energy' must be >= 0, "
                        f"got {value!r}")
            elif value < 1:
                raise SpaceError(
                    f"array dimension {name!r} must be >= 1, "
                    f"got {value!r}")
    else:
        raise SpaceError(
            f"unknown dimension {name!r}; legal: TileParams fields "
            f"({', '.join(TILE_FIELDS)}), {LIBRARY_FIELD!r}, "
            f"options ({', '.join(OPTION_FIELDS)}), array fields "
            f"({', '.join(ARRAY_FIELDS)})")
    return values


@dataclass(frozen=True)
class DesignPoint:
    """One frozen configuration of the whole mapping flow.

    ``tile`` and ``options`` are sorted ``(name, value)`` tuples so
    points are hashable, order-insensitive and stable under
    serialisation round-trips.
    """

    tile: tuple = ()
    library: str = DEFAULT_LIBRARY
    options: tuple = ()
    #: Array-level dimensions (``tiles``, ``topology``, ...); empty
    #: means the pure single-tile flow (and an unchanged cache key).
    array: tuple = ()

    @classmethod
    def make(cls, tile: Mapping | None = None,
             library: str = DEFAULT_LIBRARY,
             options: Mapping | None = None,
             array: Mapping | None = None) -> "DesignPoint":
        """Build a point from plain dicts, validating every name."""
        tile = dict(tile or {})
        options = dict(options or {})
        array = dict(array or {})
        for name in tile:
            if name not in TILE_FIELDS:
                raise SpaceError(f"unknown TileParams field {name!r}")
        for name, value in options.items():
            if name not in OPTION_FIELDS:
                raise SpaceError(f"unknown map_graph option {name!r}")
            _validate_dimension(name, [value])
        for name, value in array.items():
            if name not in ARRAY_FIELDS:
                raise SpaceError(f"unknown array field {name!r}")
            _validate_dimension(name, [value])
        _validate_dimension(LIBRARY_FIELD, [library])
        return cls(tile=tuple(sorted(tile.items())), library=library,
                   options=tuple(sorted(options.items())),
                   array=tuple(sorted(array.items())))

    @classmethod
    def from_assignment(cls, assignment: Mapping) -> "DesignPoint":
        """Build a point from one flat dimension-name -> value dict."""
        tile, options, array = {}, {}, {}
        library = DEFAULT_LIBRARY
        for name, value in assignment.items():
            if name == LIBRARY_FIELD:
                library = value
            elif name in OPTION_FIELDS:
                options[name] = value
            elif name in ARRAY_FIELDS:
                array[name] = value
            else:
                tile[name] = value
        return cls.make(tile, library, options, array)

    # -- materialisation ----------------------------------------------

    def tile_dict(self) -> dict:
        return dict(self.tile)

    def options_dict(self) -> dict:
        return dict(self.options)

    def array_dict(self) -> dict:
        return dict(self.array)

    def tile_params(self) -> TileParams:
        """The :class:`TileParams` this point configures (validates)."""
        return TileParams(**self.tile_dict())

    def tile_array_params(self) -> TileArrayParams | None:
        """The :class:`TileArrayParams` this point configures, or
        ``None`` when the point has no array dimensions (pure
        single-tile flow — the multi-tile stage is skipped)."""
        if not self.array:
            return None
        return TileArrayParams(**{ARRAY_FIELDS[name]: value
                                  for name, value in self.array})

    def template_library(self) -> TemplateLibrary:
        return TemplateLibrary.stock()[self.library]

    def assignment(self) -> dict:
        """The flat dimension-name -> value view of this point."""
        flat = self.tile_dict()
        flat[LIBRARY_FIELD] = self.library
        flat.update(self.options_dict())
        flat.update(self.array_dict())
        return flat

    # -- identity -----------------------------------------------------

    def to_dict(self) -> dict:
        # The "array" key is omitted when empty so the canonical
        # identity (and thus every existing cache key) of a pure
        # single-tile point is byte-for-byte what it was before the
        # multi-tile axis existed.
        payload = {"tile": self.tile_dict(), "library": self.library,
                   "options": self.options_dict()}
        if self.array:
            payload["array"] = self.array_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "DesignPoint":
        return cls.make(payload.get("tile"),
                        payload.get("library", DEFAULT_LIBRARY),
                        payload.get("options"),
                        payload.get("array"))

    def key(self) -> str:
        """Canonical JSON identity (the cache hashes this + source)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def label(self) -> str:
        """Short human-readable identity for tables and logs."""
        parts = [f"{name}={value}" for name, value in self.tile]
        parts.append(f"lib={self.library}")
        parts.extend(f"{name}={value}" for name, value in self.options)
        parts.extend(f"{name}={value}" for name, value in self.array)
        return " ".join(parts)

    def with_(self, **changes) -> "DesignPoint":
        """A copy with the given flat dimension values replaced."""
        flat = self.assignment()
        flat.update(changes)
        return self.from_assignment(flat)


def allowed_objectives(space: "DesignSpace") -> set[str]:
    """Objective names resolvable on *space*'s sweep records.

    Always: every mapping metric plus the ``resource`` proxy.  Tile
    fields only when the space sweeps them (records carry swept
    dimensions in their config); multi-tile metrics and numeric array
    fields only when the space has an array dimension (``topology``
    is categorical — it cannot be minimised).  The CLI and the
    service validate objectives against this one rule, so a typo is
    rejected the same way at both front doors.
    """
    # Local import: eval.metrics sits above the core pipeline and
    # must stay importable without repro.dse.
    from repro.eval.metrics import (
        METRIC_FIELDS,
        MULTITILE_METRIC_FIELDS,
    )
    allowed = (set(METRIC_FIELDS) | {"resource"} |
               (set(space.names) & set(TILE_FIELDS)))
    if set(space.names) & set(ARRAY_FIELDS):
        allowed |= set(MULTITILE_METRIC_FIELDS) | \
            ((set(space.names) & set(ARRAY_FIELDS)) - {"topology"})
    return allowed


class DesignSpace:
    """An ordered set of dimensions spanning a point grid."""

    def __init__(self, dimensions: Mapping[str, Sequence]):
        if not dimensions:
            raise SpaceError("a design space needs >= 1 dimension")
        self.dimensions: dict[str, tuple] = {
            name: _validate_dimension(name, values)
            for name, values in dimensions.items()}

    # -- shape --------------------------------------------------------

    @property
    def names(self) -> list[str]:
        return list(self.dimensions)

    @property
    def size(self) -> int:
        """Number of points in the full grid."""
        total = 1
        for values in self.dimensions.values():
            total *= len(values)
        return total

    def describe(self) -> str:
        lines = [f"design space: {self.size} points, "
                 f"{len(self.dimensions)} dimensions"]
        for name, values in self.dimensions.items():
            lines.append(f"  {name}: {list(values)}")
        return "\n".join(lines)

    # -- enumeration --------------------------------------------------

    def grid(self) -> list[DesignPoint]:
        """Every point of the full cartesian grid, row-major order."""
        names = self.names
        return [DesignPoint.from_assignment(dict(zip(names, combo)))
                for combo in itertools.product(
                    *self.dimensions.values())]

    def sample(self, n: int, seed: int = 0) -> list[DesignPoint]:
        """*n* distinct points drawn uniformly without replacement
        (the whole grid when ``n >= size``), deterministic in *seed*."""
        if n >= self.size:
            return self.grid()
        rng = random.Random(seed)
        names = self.names
        axes = [self.dimensions[name] for name in names]
        chosen: set[tuple] = set()
        points = []
        # Index-space rejection sampling: cheap because n < size.
        while len(points) < n:
            combo = tuple(rng.randrange(len(axis)) for axis in axes)
            if combo in chosen:
                continue
            chosen.add(combo)
            points.append(DesignPoint.from_assignment(
                {name: axis[index]
                 for name, axis, index in zip(names, axes, combo)}))
        return points

    @staticmethod
    def explicit(points: Iterable) -> list[DesignPoint]:
        """Normalise an explicit point list: accepts
        :class:`DesignPoint` instances, flat assignment dicts, or
        ``to_dict``-style nested dicts."""
        normalised = []
        for point in points:
            if isinstance(point, DesignPoint):
                normalised.append(point)
            elif isinstance(point, Mapping) and (
                    "tile" in point or "options" in point):
                normalised.append(DesignPoint.from_dict(point))
            elif isinstance(point, Mapping):
                normalised.append(DesignPoint.from_assignment(point))
            else:
                raise SpaceError(f"cannot interpret point {point!r}")
        return normalised

    # -- neighbourhoods (hill-climb) ----------------------------------

    def neighbours(self, point: DesignPoint) -> list[DesignPoint]:
        """All points one step away along one dimension (adjacent
        values in that dimension's ordered list)."""
        flat = point.assignment()
        result = []
        for name, values in self.dimensions.items():
            current = flat.get(name)
            if current not in values:
                # Point sits off this axis — every value is a step.
                candidates = values
            else:
                index = values.index(current)
                candidates = values[max(0, index - 1):index + 2]
            for value in candidates:
                if value != current:
                    result.append(point.with_(**{name: value}))
        return result

    def random_point(self, seed: int = 0) -> DesignPoint:
        rng = random.Random(seed)
        return DesignPoint.from_assignment(
            {name: rng.choice(values)
             for name, values in self.dimensions.items()})

    # -- stock spaces -------------------------------------------------

    @classmethod
    def default(cls) -> "DesignSpace":
        """The architecture sweep the examples and CLI default to:
        PP count x crossbar width x template library (120 points)."""
        return cls({
            "n_pps": [1, 2, 3, 4, 5, 6, 7, 8],
            "n_buses": [2, 4, 6, 8, 10],
            "library": sorted(TemplateLibrary.stock()),
        })
