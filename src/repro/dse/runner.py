"""Chunked, fault-tolerant batch evaluation of design points.

``run_sweep`` is the one engine every exploration strategy shares.
It deduplicates the requested points, satisfies what it can from the
:class:`repro.dse.cache.ResultCache`, evaluates the rest — serially
or on a ``multiprocessing`` pool in configurable chunks — and returns
one JSON-able *record* per requested point.

The mapping flow is split into a frontend (source → transformed CDFG,
depending only on the program, the data-path width and the transform
options) and a backend (cluster/schedule/allocate, depending on every
tile/array axis) — see :mod:`repro.core.pipeline`.  ``run_sweep``
compiles each *unique* frontend exactly once in the parent process
and ships the compact compiled artifact to the workers through the
pool initializer, so a 100-point sweep over tile parameters parses
and simplifies the kernel once instead of 100 times.

Per-point failures (an infeasible :class:`TileParams` combination, a
scheduling overflow, a verification mismatch) are captured inside the
worker and returned as ``{"ok": False, "error": ...}`` records, so a
120-point sweep survives its pathological corners and still reports
them.  Because the flow is deterministic, records are cached by
content hash; a repeated sweep is pure cache reads and never touches
the pool.

Invariants
----------
* ``run_sweep`` returns exactly one record per requested point, in
  request order, duplicates included (duplicates share one
  evaluation).
* The mapping flow is deterministic, so worker count, chunking and
  cache state never change a record's content — only how fast it is
  produced.  Cached records are bit-identical to fresh ones.
* A ``verify_seed`` sweep never *trusts* an unverified cache hit: it
  re-evaluates and re-caches with the ``verified`` flag.
* Points with array dimensions additionally carry the multi-tile
  metrics (:func:`repro.eval.metrics.multitile_metrics`) in the same
  flat ``metrics`` dict; single-tile points are byte-for-byte what
  they were before the multi-tile axis existed.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.pipeline import (
    Frontend,
    compile_frontend,
    map_frontend,
    random_input_state,
    verify_mapping,
)
from repro.dse.cache import ResultCache, cache_key
from repro.dse.space import DesignPoint
from repro.eval.metrics import mapping_metrics, multitile_metrics
from repro.obs import trace

#: A frontend's identity within one sweep: everything the frontend
#: stage depends on besides the (shared) program source.
FrontendSpec = tuple


def frontend_spec(point: DesignPoint) -> FrontendSpec:
    """The (width, simplify, balance) triple *point*'s frontend needs.

    Raises when the point's tile parameters are unrealisable — the
    caller treats that point as having no shareable frontend and lets
    evaluation produce the failure record.
    """
    options = point.options_dict()
    return (point.tile_params().width,
            options.get("simplify", True),
            options.get("balance", False))


def _compile_spec(source: str, spec: FrontendSpec) -> Frontend:
    width, simplify, balance = spec
    return compile_frontend(source, width=width, simplify=simplify,
                            balance=balance)


def evaluate_point(source: str, point: DesignPoint,
                   verify_seed: int | None = None, *,
                   frontend: Frontend | None = None,
                   sink: dict | None = None) -> dict:
    """Map *source* at *point*; never raises — failures are records.

    With *verify_seed*, the mapped program is additionally checked
    against the reference interpreter on deterministic random inputs,
    and a mismatch fails the record.

    *frontend* is an optional pre-compiled frontend matching this
    point's :func:`frontend_spec`; without one the frontend is
    compiled here.  Either way the record is identical — the flow is
    deterministic — a shared frontend only changes how fast the
    record is produced.

    *sink*, when given, receives side artifacts that must never leak
    into the record (the record format is the cache's on-disk
    contract): ``sink["report"]`` is the full :class:`MappingReport`
    and ``sink["timings"]`` its per-stage wall times.  The service
    uses this for its per-job profile without forking the record
    producer.
    """
    record = {"point": point.to_dict(), "config": point.assignment()}
    with trace.span("dse.point"):
        try:
            params = point.tile_params()
            library = point.template_library()
            if frontend is None:
                frontend = _compile_spec(source, frontend_spec(point))
            report = map_frontend(frontend, params, library,
                                  array=point.tile_array_params())
            if sink is not None:
                sink["report"] = report
                sink["timings"] = dict(report.timings)
            if verify_seed is not None:
                verify_mapping(report,
                               random_input_state(report, verify_seed))
                record["verified"] = True
            record["ok"] = True
            record["metrics"] = mapping_metrics(report)
            if report.multitile is not None:
                # Array-dimension points carry the multi-tile
                # aggregates (per-tile utilisation, cut, transfer
                # steps/energy) in the same flat metrics dict, so
                # objectives and tables address them by name like any
                # other metric.
                record["metrics"].update(multitile_metrics(report))
        except Exception as error:  # noqa: BLE001 — fault isolation
            record["ok"] = False
            record["error"] = f"{type(error).__name__}: {error}"
    return record


#: Per-worker sweep context installed by :func:`_init_worker`: the
#: program source and a frontend memo seeded with any parent-compiled
#: frontends, sent once per worker process instead of once per job.
_WORKER_CONTEXT: dict = {}


def _init_worker(source: str,
                 frontends: dict[FrontendSpec, Frontend],
                 trace_ctx: dict | None = None) -> None:
    _WORKER_CONTEXT["source"] = source
    _WORKER_CONTEXT["frontends"] = dict(frontends)
    # The parent sweep's trace context: pool workers attach it so
    # their dse.point spans parent to the coordinating dse.sweep
    # span.  None when tracing is off (fork children inherit the
    # parent's enabled flag; spawn children read FPFA_TRACE).
    _WORKER_CONTEXT["trace"] = trace_ctx


def _worker(payload: tuple) -> tuple:
    """Pool entry point: evaluate one point from its serialised form.

    Frontends are memoised per worker process: a spec the parent did
    not pre-ship is compiled on first use and reused for every later
    job with the same spec, so sweeps spanning several frontend axes
    compile them in parallel across the pool.  A failed compile
    memoises ``None`` and the evaluation recompiles per point,
    producing the identical failure record.
    """
    key, point_dict, verify_seed, spec = payload
    point = DesignPoint.from_dict(point_dict)
    frontend = None
    if spec is not None:
        memo = _WORKER_CONTEXT["frontends"]
        if spec in memo:
            frontend = memo[spec]
        else:
            try:
                frontend = _compile_spec(_WORKER_CONTEXT["source"],
                                         spec)
            except Exception:  # noqa: BLE001 — surfaces per record
                frontend = None
            memo[spec] = frontend
    with trace.attach(_WORKER_CONTEXT.get("trace")):
        return key, evaluate_point(_WORKER_CONTEXT["source"], point,
                                   verify_seed, frontend=frontend)


@dataclass
class SweepStats:
    """Where each record of one sweep came from, and how long it took."""

    total: int = 0          #: points requested (duplicates included)
    unique: int = 0         #: distinct (source, point) keys
    cached: int = 0         #: unique points served from the cache
    evaluated: int = 0      #: unique points actually mapped
    failed: int = 0         #: unique points whose record is not ok
    workers: int = 1        #: pool size used (1 = in-process serial)
    frontends: int = 0      #: frontend specs shared by >1 swept point
    elapsed: float = 0.0    #: wall-clock seconds for the whole sweep

    def as_dict(self) -> dict:
        """The JSON-ready ledger ``fpfa-map explore --json`` embeds.

        Subclasses (:class:`repro.dse.distributed
        .DistributedSweepStats`) inherit this, so a remote run's
        shard/steal/fallback counters flow into the same payload
        field — scripts and dashboards read one shape either way.
        """
        return dict(vars(self))

    def summary(self) -> str:
        rate = self.cached / self.unique if self.unique else 0.0
        shared = (f" sharing {self.frontends} frontend(s)"
                  if self.frontends else "")
        return (f"{self.total} points ({self.unique} unique): "
                f"{self.cached} cached ({rate:.0%}), "
                f"{self.evaluated} evaluated on {self.workers} "
                f"worker(s){shared}, {self.failed} failed, "
                f"{self.elapsed:.2f}s")


@dataclass
class SweepResult:
    """Aligned (point, record) pairs plus provenance stats."""

    points: list = field(default_factory=list)
    records: list = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    def ok_records(self) -> list[dict]:
        return [record for record in self.records if record["ok"]]

    def failures(self) -> list[dict]:
        return [record for record in self.records if not record["ok"]]

    def rows(self, metric_columns: Sequence[str] = (
            "cycles", "alu_util", "locality", "energy")) -> list[dict]:
        """Flat dict rows (config + chosen metrics) for
        :func:`repro.eval.report.render_table`.

        Every row carries the same column set — the union of config
        dimensions, the metric columns, and (when any point failed)
        an error column — so the rendered table is stable no matter
        which record happens to come first.
        """
        config_columns: list[str] = []
        for record in self.records:
            for name in record["config"]:
                if name not in config_columns:
                    config_columns.append(name)
        any_failed = any(not record["ok"] for record in self.records)
        rows = []
        for record in self.records:
            row = {name: record["config"].get(name, "")
                   for name in config_columns}
            for column in metric_columns:
                row[column] = (record["metrics"].get(column, "")
                               if record["ok"] else "")
            if any_failed:
                row["error"] = ("" if record["ok"]
                                else record["error"])
            rows.append(row)
        return rows


def _resolve_cache(cache, max_entries: int | None = None,
                   max_bytes: int | None = None
                   ) -> ResultCache | None:
    if cache is None:
        return None
    if isinstance(cache, ResultCache):
        if max_entries is not None or max_bytes is not None:
            cache.set_bounds(max_entries, max_bytes)
        return cache
    return ResultCache(cache, max_entries=max_entries,
                       max_bytes=max_bytes)


def _resolve_workers(workers: int | None, n_jobs: int) -> int:
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(workers, n_jobs)) if n_jobs else 1


def run_sweep(source: str, points: Iterable[DesignPoint], *,
              workers: int | None = None, cache=None,
              cache_max_entries: int | None = None,
              cache_max_bytes: int | None = None,
              chunksize: int | None = None,
              verify_seed: int | None = None,
              frontends: Mapping[FrontendSpec, Frontend] | None = None,
              remotes: Sequence[str] | None = None,
              remote_chunk_size: int | None = None,
              remote_timeout: float | None = None,
              ) -> SweepResult:
    """Evaluate every design point of *points* against *source*.

    Parameters
    ----------
    workers:
        Pool processes; ``None`` uses ``os.cpu_count()``.  ``1`` (or a
        single uncached point) evaluates in-process.
    cache:
        ``None``, a directory path, or a :class:`ResultCache`.  Hits
        skip evaluation; fresh records are written back.
        ``cache_max_entries`` / ``cache_max_bytes`` bound the store
        (LRU eviction, see ``docs/store.md``); the sweep's *result*
        is unaffected by the bound — only which records survive on
        disk afterwards.
    chunksize:
        Points per pool task (default: balanced for ~4 chunks per
        worker).
    verify_seed:
        When set, every mapping is verified against the interpreter.
        The seed is deliberately not part of the cache key — the flow
        is deterministic, so a record once *verified* holds for any
        seed — but cache hits that were never verified at all are
        re-evaluated rather than trusted.
    frontends:
        Optional pre-compiled frontends for *source*, keyed by
        :func:`frontend_spec`, seeding the sweep's own sharing (the
        service daemon passes its warm frontend memo here so an
        exploration job never recompiles a frontend a mapping job
        already paid for).  Determinism makes this purely a speed
        knob.
    remotes:
        Daemon URLs (``fpfa-map serve`` addresses) to shard the sweep
        across; delegates to
        :func:`repro.dse.distributed.run_distributed_sweep`.
        ``remote_chunk_size`` / ``remote_timeout`` tune the leases.
        Records are bit-identical to a local sweep (the flow is
        deterministic and every remote runs the same
        :func:`evaluate_point`); a dead or lagging daemon's chunks
        are re-leased, local evaluation is the last-resort backend.
    """
    cache = _resolve_cache(cache, cache_max_entries, cache_max_bytes)
    if remotes:
        from repro.dse.distributed import run_distributed_sweep
        extra = {}
        if remote_chunk_size is not None:
            extra["chunk_size"] = remote_chunk_size
        if remote_timeout is not None:
            extra["timeout"] = remote_timeout
        return run_distributed_sweep(
            source, points, remotes=remotes, cache=cache,
            verify_seed=verify_seed, frontends=frontends, **extra)
    with trace.span("dse.sweep") as sweep_span:
        result = _run_local_sweep(
            source, points, workers=workers, cache=cache,
            chunksize=chunksize, verify_seed=verify_seed,
            frontends=frontends)
        sweep_span.note(points=result.stats.total,
                        cached=result.stats.cached,
                        evaluated=result.stats.evaluated,
                        failed=result.stats.failed)
    return result


def _run_local_sweep(source: str, points: Iterable[DesignPoint], *,
                     workers: int | None, cache,
                     chunksize: int | None,
                     verify_seed: int | None,
                     frontends: Mapping[FrontendSpec, Frontend] | None
                     ) -> SweepResult:
    started = time.perf_counter()
    points = list(points)
    cache = _resolve_cache(cache)
    stats = SweepStats(total=len(points))

    by_key: dict[str, dict | None] = {}
    key_order: list[str] = []
    point_keys: list[str] = []
    key_points: dict[str, DesignPoint] = {}
    for point in points:
        key = cache_key(source, point)
        point_keys.append(key)
        if key not in by_key:
            by_key[key] = None
            key_order.append(key)
            key_points[key] = point
    stats.unique = len(key_order)

    pending: list[str] = []
    for key in key_order:
        record = cache.get(key) if cache is not None else None
        if record is not None and verify_seed is not None \
                and record.get("ok") and not record.get("verified"):
            # The cached record was computed by a sweep that never
            # verified; this sweep promises verification, so the hit
            # does not satisfy it — re-evaluate (and re-cache with
            # the verified flag).
            cache.downgrade_hit()
            record = None
        if record is not None:
            by_key[key] = record
            stats.cached += 1
        else:
            pending.append(key)

    workers = _resolve_workers(workers, len(pending))
    stats.workers = workers
    if pending:
        # Frontend sharing: a spec needed by more than one pending
        # point is compiled once and reused.  Where it compiles
        # depends on the sweep's shape — in the parent (and shipped
        # through the pool initializer) when the whole sweep shares
        # one frontend or runs serially, inside the workers' memo
        # when several distinct shared specs could compile in
        # parallel across the pool.  A spec used by a single point
        # always compiles inside its own evaluation.  A point whose
        # tile parameters are unrealisable (or whose frontend compile
        # fails) recompiles per evaluation and yields the identical
        # failure record either way.
        specs: dict[str, FrontendSpec | None] = {}
        spec_counts: dict[FrontendSpec, int] = {}
        for key in pending:
            try:
                spec = frontend_spec(key_points[key])
            except Exception:  # noqa: BLE001 — surfaces per record
                specs[key] = None
                continue
            specs[key] = spec
            spec_counts[spec] = spec_counts.get(spec, 0) + 1
        shared = [spec for spec, count in spec_counts.items()
                  if count > 1]
        stats.frontends = len(shared)
        compiled: dict[FrontendSpec, Frontend] = dict(frontends or {})
        if workers == 1 or len(shared) == 1:
            for spec in shared:
                if spec in compiled:
                    continue
                try:
                    compiled[spec] = _compile_spec(source, spec)
                except Exception:  # noqa: BLE001 — per-record failure
                    pass
        if workers > 1:
            jobs = [(key, key_points[key].to_dict(), verify_seed,
                     specs[key])
                    for key in pending]
            if chunksize is None:
                chunksize = max(1, len(jobs) // (workers * 4))
            context = multiprocessing.get_context(
                "fork" if "fork" in
                multiprocessing.get_all_start_methods() else None)
            with context.Pool(processes=workers,
                              initializer=_init_worker,
                              initargs=(source, compiled,
                                        trace.context())) as pool:
                outcomes = pool.imap_unordered(_worker, jobs,
                                               chunksize=chunksize)
                # Write-back happens per result, not at sweep end:
                # a coordinator killed mid-sweep keeps everything it
                # finished, which is what makes `--resume` recompute
                # only the missing records.  Only successful records
                # are memoised: a failure may be transient (resource
                # exhaustion in a worker), and caching it would
                # poison the (source, point) key for every later
                # sweep sharing this cache directory.
                for key, record in outcomes:
                    by_key[key] = record
                    if cache is not None and record["ok"]:
                        cache.put(key, record)
        else:
            for key in pending:
                spec = specs[key]
                frontend = compiled.get(spec) \
                    if spec is not None else None
                record = evaluate_point(
                    source, key_points[key], verify_seed,
                    frontend=frontend)
                by_key[key] = record
                if cache is not None and record["ok"]:
                    cache.put(key, record)
        stats.evaluated = len(pending)

    records = [by_key[key] for key in point_keys]
    stats.failed = sum(1 for key in key_order
                       if not by_key[key]["ok"])
    stats.elapsed = time.perf_counter() - started
    return SweepResult(points=points, records=records, stats=stats)


def evaluate_chunk(source: str, points: Iterable[DesignPoint], *,
                   verify_seed: int | None = None, cache=None,
                   frontends: Mapping[FrontendSpec, Frontend]
                   | None = None) -> tuple[dict, SweepStats]:
    """Evaluate one chunk of points; records keyed by cache key.

    The unit a distributed sweep leases to a daemon (the service's
    ``sweep-chunk`` job kind runs exactly this): a plain
    :func:`run_sweep` over the chunk — same cache rules, same record
    producer, so a chunk's records are bit-identical to the ones a
    local sweep would mint, and they land in *cache* (the daemon's
    artifact store) under the shared keys.  Runs in-process
    (``workers=1``): on a daemon, the worker pool above is the
    parallelism, and chunks from one sweep spread across it.

    Returns ``(records_by_key, stats)``; the stats tell the
    coordinator how much of the chunk was already in the remote
    store.
    """
    with trace.span("dse.chunk") as chunk_span:
        result = _run_local_sweep(source, list(points), workers=1,
                                  cache=cache, chunksize=None,
                                  verify_seed=verify_seed,
                                  frontends=frontends)
        chunk_span.note(points=result.stats.total,
                        cached=result.stats.cached,
                        evaluated=result.stats.evaluated)
    records = {cache_key(source, point): record
               for point, record in zip(result.points, result.records)}
    return records, result.stats
