"""Chunked, fault-tolerant batch evaluation of design points.

``run_sweep`` is the one engine every exploration strategy shares.
It deduplicates the requested points, satisfies what it can from the
:class:`repro.dse.cache.ResultCache`, evaluates the rest — serially
or on a ``multiprocessing`` pool in configurable chunks — and returns
one JSON-able *record* per requested point.

Per-point failures (an infeasible :class:`TileParams` combination, a
scheduling overflow, a verification mismatch) are captured inside the
worker and returned as ``{"ok": False, "error": ...}`` records, so a
120-point sweep survives its pathological corners and still reports
them.  Because the flow is deterministic, records are cached by
content hash; a repeated sweep is pure cache reads and never touches
the pool.

Invariants
----------
* ``run_sweep`` returns exactly one record per requested point, in
  request order, duplicates included (duplicates share one
  evaluation).
* The mapping flow is deterministic, so worker count, chunking and
  cache state never change a record's content — only how fast it is
  produced.  Cached records are bit-identical to fresh ones.
* A ``verify_seed`` sweep never *trusts* an unverified cache hit: it
  re-evaluates and re-caches with the ``verified`` flag.
* Points with array dimensions additionally carry the multi-tile
  metrics (:func:`repro.eval.metrics.multitile_metrics`) in the same
  flat ``metrics`` dict; single-tile points are byte-for-byte what
  they were before the multi-tile axis existed.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.pipeline import (
    map_source,
    random_input_state,
    verify_mapping,
)
from repro.dse.cache import ResultCache, cache_key
from repro.dse.space import DesignPoint
from repro.eval.metrics import mapping_metrics, multitile_metrics


def evaluate_point(source: str, point: DesignPoint,
                   verify_seed: int | None = None) -> dict:
    """Map *source* at *point*; never raises — failures are records.

    With *verify_seed*, the mapped program is additionally checked
    against the reference interpreter on deterministic random inputs,
    and a mismatch fails the record.
    """
    record = {"point": point.to_dict(), "config": point.assignment()}
    try:
        params = point.tile_params()
        library = point.template_library()
        report = map_source(source, params, library,
                            array=point.tile_array_params(),
                            **point.options_dict())
        if verify_seed is not None:
            verify_mapping(report,
                           random_input_state(report, verify_seed))
            record["verified"] = True
        record["ok"] = True
        record["metrics"] = mapping_metrics(report)
        if report.multitile is not None:
            # Array-dimension points carry the multi-tile aggregates
            # (per-tile utilisation, cut, transfer steps/energy) in
            # the same flat metrics dict, so objectives and tables
            # address them by name like any other metric.
            record["metrics"].update(multitile_metrics(report))
    except Exception as error:  # noqa: BLE001 — fault isolation
        record["ok"] = False
        record["error"] = f"{type(error).__name__}: {error}"
    return record


def _worker(payload: tuple) -> tuple:
    """Pool entry point: evaluate one point from its serialised form."""
    key, source, point_dict, verify_seed = payload
    point = DesignPoint.from_dict(point_dict)
    return key, evaluate_point(source, point, verify_seed)


@dataclass
class SweepStats:
    """Where each record of one sweep came from, and how long it took."""

    total: int = 0          #: points requested (duplicates included)
    unique: int = 0         #: distinct (source, point) keys
    cached: int = 0         #: unique points served from the cache
    evaluated: int = 0      #: unique points actually mapped
    failed: int = 0         #: unique points whose record is not ok
    workers: int = 1        #: pool size used (1 = in-process serial)
    elapsed: float = 0.0    #: wall-clock seconds for the whole sweep

    def summary(self) -> str:
        rate = self.cached / self.unique if self.unique else 0.0
        return (f"{self.total} points ({self.unique} unique): "
                f"{self.cached} cached ({rate:.0%}), "
                f"{self.evaluated} evaluated on {self.workers} "
                f"worker(s), {self.failed} failed, "
                f"{self.elapsed:.2f}s")


@dataclass
class SweepResult:
    """Aligned (point, record) pairs plus provenance stats."""

    points: list = field(default_factory=list)
    records: list = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    def ok_records(self) -> list[dict]:
        return [record for record in self.records if record["ok"]]

    def failures(self) -> list[dict]:
        return [record for record in self.records if not record["ok"]]

    def rows(self, metric_columns: Sequence[str] = (
            "cycles", "alu_util", "locality", "energy")) -> list[dict]:
        """Flat dict rows (config + chosen metrics) for
        :func:`repro.eval.report.render_table`.

        Every row carries the same column set — the union of config
        dimensions, the metric columns, and (when any point failed)
        an error column — so the rendered table is stable no matter
        which record happens to come first.
        """
        config_columns: list[str] = []
        for record in self.records:
            for name in record["config"]:
                if name not in config_columns:
                    config_columns.append(name)
        any_failed = any(not record["ok"] for record in self.records)
        rows = []
        for record in self.records:
            row = {name: record["config"].get(name, "")
                   for name in config_columns}
            for column in metric_columns:
                row[column] = (record["metrics"].get(column, "")
                               if record["ok"] else "")
            if any_failed:
                row["error"] = ("" if record["ok"]
                                else record["error"])
            rows.append(row)
        return rows


def _resolve_cache(cache) -> ResultCache | None:
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def _resolve_workers(workers: int | None, n_jobs: int) -> int:
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(workers, n_jobs)) if n_jobs else 1


def run_sweep(source: str, points: Iterable[DesignPoint], *,
              workers: int | None = None, cache=None,
              chunksize: int | None = None,
              verify_seed: int | None = None) -> SweepResult:
    """Evaluate every design point of *points* against *source*.

    Parameters
    ----------
    workers:
        Pool processes; ``None`` uses ``os.cpu_count()``.  ``1`` (or a
        single uncached point) evaluates in-process.
    cache:
        ``None``, a directory path, or a :class:`ResultCache`.  Hits
        skip evaluation; fresh records are written back.
    chunksize:
        Points per pool task (default: balanced for ~4 chunks per
        worker).
    verify_seed:
        When set, every mapping is verified against the interpreter.
        The seed is deliberately not part of the cache key — the flow
        is deterministic, so a record once *verified* holds for any
        seed — but cache hits that were never verified at all are
        re-evaluated rather than trusted.
    """
    started = time.perf_counter()
    points = list(points)
    cache = _resolve_cache(cache)
    stats = SweepStats(total=len(points))

    by_key: dict[str, dict | None] = {}
    key_order: list[str] = []
    point_keys: list[str] = []
    key_points: dict[str, DesignPoint] = {}
    for point in points:
        key = cache_key(source, point)
        point_keys.append(key)
        if key not in by_key:
            by_key[key] = None
            key_order.append(key)
            key_points[key] = point
    stats.unique = len(key_order)

    pending: list[str] = []
    for key in key_order:
        record = cache.get(key) if cache is not None else None
        if record is not None and verify_seed is not None \
                and record.get("ok") and not record.get("verified"):
            # The cached record was computed by a sweep that never
            # verified; this sweep promises verification, so the hit
            # does not satisfy it — re-evaluate (and re-cache with
            # the verified flag).
            cache.downgrade_hit()
            record = None
        if record is not None:
            by_key[key] = record
            stats.cached += 1
        else:
            pending.append(key)

    workers = _resolve_workers(workers, len(pending))
    stats.workers = workers
    if pending:
        jobs = [(key, source, key_points[key].to_dict(), verify_seed)
                for key in pending]
        if workers > 1:
            if chunksize is None:
                chunksize = max(1, len(jobs) // (workers * 4))
            context = multiprocessing.get_context(
                "fork" if "fork" in
                multiprocessing.get_all_start_methods() else None)
            with context.Pool(processes=workers) as pool:
                outcomes = pool.imap_unordered(_worker, jobs,
                                               chunksize=chunksize)
                for key, record in outcomes:
                    by_key[key] = record
        else:
            for job in jobs:
                key, record = _worker(job)
                by_key[key] = record
        stats.evaluated = len(jobs)
        if cache is not None:
            # Only successful records are memoised: a failure may be
            # transient (resource exhaustion in a worker), and caching
            # it would poison the (source, point) key for every later
            # sweep sharing this cache directory.
            for key in pending:
                if by_key[key]["ok"]:
                    cache.put(key, by_key[key])

    records = [by_key[key] for key in point_keys]
    stats.failed = sum(1 for key in key_order
                       if not by_key[key]["ok"])
    stats.elapsed = time.perf_counter() - started
    return SweepResult(points=points, records=records, stats=stats)
