"""Exploration strategies over a design space.

Three strategies share the same runner and cache, so they compose:
an exhaustive grid primes the cache, a later hill-climb walks it for
free, and a random probe of a bigger space costs only its sample.

* :func:`exhaustive_search` — evaluate the full grid;
* :func:`random_search` — a seeded uniform sample without
  replacement;
* :func:`hill_climb` — greedy steepest-descent over one-step
  neighbourhoods (adjacent values along each dimension), with
  seeded multi-restart.

Every strategy minimises a weighted scalarisation of the requested
objectives and returns the full evaluation trace, so callers can
still extract a Pareto frontier from whatever the search touched.

Invariants
----------
* Strategies are deterministic in their ``seed`` (the underlying
  flow is deterministic, sampling and restarts are seeded).
* ``SearchResult.records`` contains every record the strategy
  evaluated — the best point is always among them, and extracting a
  frontier from the trace is always legal.
* The hill-climb freezes objective scales on its first batch, so one
  climb's scores are mutually comparable across steps and restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.dse.pareto import (
    DEFAULT_OBJECTIVES,
    best_record,
    objective_value,
)
from repro.dse.runner import SweepStats, _resolve_cache, run_sweep
from repro.dse.space import DesignPoint, DesignSpace

#: Extra seeded start samples a hill-climb restart may draw when its
#: start point is infeasible, before giving the restart up.
MAX_START_RESAMPLES = 8
#: Seed offset between successive resamples of one restart — large
#: enough that attempt seeds never collide with other restarts'
#: ``seed + restart`` base seeds for any sane restart count.
_RESAMPLE_SEED_STRIDE = 100_003


@dataclass
class SearchResult:
    """Everything one strategy run touched and concluded."""

    strategy: str
    best: dict | None
    records: list = field(default_factory=list)
    history: list = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    def summary(self) -> str:
        lines = [f"{self.strategy}: {self.stats.summary()}"]
        if self.best is not None:
            metrics = self.best["metrics"]
            lines.append(
                f"best: {DesignPoint.from_dict(self.best['point']).label()}"
                f"  cycles={metrics['cycles']}"
                f"  energy={metrics['energy']}")
        else:
            lines.append("best: (no feasible point)")
        return "\n".join(lines)


def _merge_stats(total: SweepStats, part: SweepStats) -> None:
    total.total += part.total
    total.unique += part.unique
    total.cached += part.cached
    total.evaluated += part.evaluated
    total.failed += part.failed
    total.workers = max(total.workers, part.workers)
    total.elapsed += part.elapsed


def _sweep_search(strategy: str, source: str,
                  points: Sequence[DesignPoint],
                  objectives: Sequence[str],
                  weights: Mapping[str, float] | None,
                  **run_kwargs) -> SearchResult:
    result = run_sweep(source, points, **run_kwargs)
    best = best_record(result.records, objectives, weights)
    return SearchResult(strategy=strategy, best=best,
                        records=result.records, stats=result.stats)


def exhaustive_search(source: str, space: DesignSpace, *,
                      objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                      weights: Mapping[str, float] | None = None,
                      **run_kwargs) -> SearchResult:
    """Evaluate every point of the grid and pick the scalar best."""
    return _sweep_search("exhaustive", source, space.grid(),
                         objectives, weights, **run_kwargs)


def random_search(source: str, space: DesignSpace, *,
                  n_samples: int = 32, seed: int = 0,
                  objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                  weights: Mapping[str, float] | None = None,
                  **run_kwargs) -> SearchResult:
    """Evaluate a seeded uniform sample of the grid."""
    points = space.sample(n_samples, seed=seed)
    return _sweep_search("random", source, points,
                         objectives, weights, **run_kwargs)


def hill_climb(source: str, space: DesignSpace, *,
               start: DesignPoint | None = None,
               seed: int = 0, max_steps: int = 32, restarts: int = 1,
               objectives: Sequence[str] = DEFAULT_OBJECTIVES,
               weights: Mapping[str, float] | None = None,
               **run_kwargs) -> SearchResult:
    """Greedy steepest-descent over one-step neighbourhoods.

    Objective scales are frozen on the first evaluated batch so the
    scalarisation stays consistent across the whole climb; revisited
    points are served from an in-memory trace (and the shared on-disk
    cache, when one is passed through *run_kwargs*).
    """
    weights = dict(weights or {})
    run_kwargs["cache"] = _resolve_cache(run_kwargs.get("cache"))
    # Neighbourhood batches are tiny (a handful of points per step);
    # spinning a fresh pool up for each one costs more than the
    # mappings, so climbs default to in-process evaluation unless the
    # caller explicitly asks for a worker count (None means "pick a
    # default" here, not cpu_count as in run_sweep).
    if run_kwargs.get("workers") is None:
        run_kwargs["workers"] = 1
    seen: dict[str, dict] = {}
    stats = SweepStats()
    history: list[dict] = []
    scales: dict[str, float] = {}

    def evaluate(points: Sequence[DesignPoint]) -> list[dict]:
        fresh = []
        fresh_keys = set()
        for point in points:
            key = point.key()
            if key not in seen and key not in fresh_keys:
                fresh.append(point)
                fresh_keys.add(key)
        if fresh:
            sweep = run_sweep(source, fresh, **run_kwargs)
            _merge_stats(stats, sweep.stats)
            for point, record in zip(sweep.points, sweep.records):
                seen[point.key()] = record
        return [seen[point.key()] for point in points]

    def score(record: Mapping) -> float:
        if not scales:
            for name in objectives:
                scales[name] = max(
                    abs(objective_value(record, name)), 1.0)
        return sum(weights.get(name, 1.0) *
                   objective_value(record, name) / scales[name]
                   for name in objectives)

    best: dict | None = None
    best_score = float("inf")
    for restart in range(max(1, restarts)):
        # An infeasible sampled start must not burn the whole
        # restart: on a space with sparse feasibility, `restarts=3`
        # could otherwise do zero climbing.  Resample fresh seeded
        # starts (bounded, so a fully-infeasible space still
        # terminates); every attempt is deterministic in `seed`.
        current = None
        current_record = None
        for attempt in range(1 + MAX_START_RESAMPLES):
            if attempt == 0 and restart == 0 and start is not None:
                candidate = start
            else:
                candidate = space.random_point(
                    seed=seed + restart
                    + attempt * _RESAMPLE_SEED_STRIDE)
            record = evaluate([candidate])[0]
            if record["ok"]:
                current, current_record = candidate, record
                break
            history.append({"restart": restart, "step": 0,
                            "point": candidate.label(),
                            "score": None, "note": "infeasible start"})
        if current is None:
            continue
        current_score = score(current_record)
        history.append({"restart": restart, "step": 0,
                        "point": current.label(),
                        "score": round(current_score, 4)})
        for step in range(1, max_steps + 1):
            neighbours = space.neighbours(current)
            records = evaluate(neighbours)
            candidates = [
                (score(record), index)
                for index, record in enumerate(records)
                if record["ok"]]
            if not candidates:
                break
            neighbour_score, index = min(candidates)
            if neighbour_score >= current_score:
                break  # local optimum
            current = neighbours[index]
            current_record = records[index]
            current_score = neighbour_score
            history.append({"restart": restart, "step": step,
                            "point": current.label(),
                            "score": round(current_score, 4)})
        if current_score < best_score:
            best, best_score = current_record, current_score

    return SearchResult(strategy="hill-climb", best=best,
                        records=list(seen.values()),
                        history=history, stats=stats)


STRATEGIES = {
    "exhaustive": exhaustive_search,
    "random": random_search,
    "hill": hill_climb,
}
