"""Distributed sweep sharding across ``fpfa-map serve`` daemons.

:func:`run_distributed_sweep` is :func:`repro.dse.runner.run_sweep`
stretched over a fleet: the coordinator deduplicates the requested
points exactly as a local sweep would, satisfies what it can from its
own :class:`~repro.dse.cache.ResultCache`, then asks the fleet's
*stores* before asking its *workers* — a peering pass over the
``store-has``/``store-fetch`` endpoints pulls every record some
daemon already holds (one daemon's finished sweep warms every
coordinator; see ``docs/store.md``) — and only the still-missing
keys are split into *chunks* and leased to remote daemons through
the service's ``sweep-chunk`` job kind.  Each lease is one HTTP job;
the daemon runs the chunk through its worker pool against its
artifact store and answers with records keyed by cache key.

Fault model — the sweep **always completes** (see
``docs/resilience.md`` for the full lifecycle):

* a daemon that is unreachable at probe time is dropped from the
  fleet before any lease is issued;
* inside a lease, transient faults retry under a seeded
  :class:`~repro.service.resilience.RetryPolicy` (a reset socket, a
  queue-full 503 honouring ``Retry-After``) before the lease is
  declared failed — one blip no longer costs a daemon;
* a daemon that fails a lease outright (its circuit breaker trips,
  or the retried call still dies) is demoted to **probation**: its
  chunk is re-queued and stolen by a surviving daemon, while a
  prober re-checks the daemon's ``/healthz`` on a backoff schedule
  and **readmits** it to the lease pool when it recovers — a
  restarted daemon rejoins the running sweep;
* when every daemon is gone, the leftover chunks are evaluated
  locally — plain :func:`run_sweep`, the fallback backend.

Completed work is durable as it happens: chunk records are written
to the coordinator's cache the moment they merge (not at sweep end),
and a checkpoint journal
(:mod:`repro.dse.checkpoint`) beside the cache records pending keys,
leases and completions — so a killed coordinator resumes with
``fpfa-map explore --resume`` and recomputes only what is missing.

Determinism is what makes stealing safe: the mapping flow is
deterministic, so a chunk evaluated twice (a slow daemon finishing a
lease the coordinator already re-issued) yields byte-identical
records, and merging by cache key is idempotent.  Completions are
deduplicated by chunk id, so the late copy also never double-counts
the :class:`DistributedSweepStats` ledger.

Invariants
----------
* Records are **bit-identical** to a purely local ``run_sweep`` of
  the same points: remote daemons run the same
  :func:`~repro.dse.runner.evaluate_point`, records are keyed by the
  same :func:`~repro.dse.cache.cache_key`, and fresh records are
  written back to the coordinator's cache in the same on-disk
  format — local and remote runs warm each other.
* One record per requested point, in request order, duplicates
  included — the ``run_sweep`` contract, unchanged.
* An unverified cached record never satisfies a verifying sweep
  (the runner's rule, applied on both sides of the wire).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence
from urllib.parse import urlsplit

from repro.core.pipeline import Frontend
from repro.dse.cache import ResultCache, cache_key
from repro.dse.checkpoint import (
    SweepJournal,
    journal_path_for,
    sweep_id,
)
from repro.dse.runner import (
    FrontendSpec,
    SweepResult,
    SweepStats,
    _resolve_cache,
    run_sweep,
)
from repro.dse.space import DesignPoint
from repro.obs import trace
from repro.service.resilience import (
    BreakerOpen,
    CircuitBreaker,
    RetryPolicy,
    resilience_counter,
)

#: Points per lease by default: big enough to amortise one HTTP round
#: trip over several mappings, small enough that re-evaluating a lost
#: chunk is cheap.
DEFAULT_CHUNK_SIZE = 8
#: Seconds one lease may run before the chunk is re-leased.
DEFAULT_LEASE_TIMEOUT = 120.0
#: Cap on concurrent leases per daemon (matched to the daemon's own
#: worker count below this cap — one lease per worker keeps every
#: remote pool busy without flooding its queue).
MAX_LEASES_PER_DAEMON = 8

#: In-lease retry schedule: transient faults get a few fast retries
#: before the lease is declared failed and the daemon demoted.
DEFAULT_RETRY = RetryPolicy(attempts=3, base_delay=0.1,
                            max_delay=2.0, jitter=0.25)
#: Probation re-probe schedule (only :meth:`RetryPolicy.delay` is
#: used — probation probes until the sweep ends, not N times).
PROBE_BACKOFF = RetryPolicy(attempts=2, base_delay=0.25,
                            max_delay=4.0, jitter=0.25)
#: Consecutive lease-call failures that open a daemon's breaker.
BREAKER_THRESHOLD = 4
#: Seconds an open breaker waits before letting a probe call through.
BREAKER_RESET = 2.0


class DistributedError(RuntimeError):
    """The fleet specification itself is unusable (bad URL)."""


def parse_remote(spec: str) -> tuple[str, int]:
    """``URL`` / ``host:port`` / ``host`` -> ``(host, port)``."""
    from repro.service.protocol import DEFAULT_PORT
    text = spec.strip()
    if not text:
        raise DistributedError("empty remote daemon address")
    if "//" not in text:
        text = f"//{text}"
    parts = urlsplit(text)
    if parts.scheme not in ("", "http"):
        raise DistributedError(
            f"remote {spec!r}: only http daemons exist")
    try:
        host, port = parts.hostname, parts.port
    except ValueError as error:
        raise DistributedError(f"remote {spec!r}: {error}")
    if not host:
        raise DistributedError(f"remote {spec!r} has no host")
    return host, port if port is not None else DEFAULT_PORT


def parse_remotes(specs) -> list[tuple[str, int]]:
    """Normalise a fleet spec into unique ``(host, port)`` pairs,
    order preserved.  Accepts one string (commas separate daemons), a
    sequence of strings, already-parsed ``(host, port)`` pairs, or a
    mix — so a pre-parsed fleet passes through unchanged."""
    if isinstance(specs, str):
        specs = [specs]
    pairs: list[tuple[str, int]] = []

    def add(pair: tuple[str, int]) -> None:
        if pair not in pairs:
            pairs.append(pair)

    for spec in specs:
        if isinstance(spec, tuple):
            if len(spec) != 2:
                raise DistributedError(
                    f"remote pair {spec!r} is not (host, port)")
            add((str(spec[0]), int(spec[1])))
            continue
        for item in str(spec).split(","):
            if item.strip():
                add(parse_remote(item))
    return pairs


def sweep_identity(source: str, points: Iterable[DesignPoint],
                   verify_seed: int | None) -> str:
    """The checkpoint-journal identity this sweep would run under
    (deduplicated key order, exactly as the coordinator computes
    it) — ``fpfa-map explore --resume`` matches journals with it."""
    seen: list[str] = []
    taken: set[str] = set()
    for point in points:
        key = cache_key(source, point)
        if key not in taken:
            taken.add(key)
            seen.append(key)
    return sweep_id(source, seen, verify_seed)


@dataclass
class DistributedSweepStats(SweepStats):
    """Sweep provenance plus the distribution ledger.

    Inherits the local fields (``cached`` counts the *coordinator's*
    cache hits; ``evaluated`` counts points the coordinator had to
    source elsewhere — from daemons or the local fallback).
    """

    daemons: int = 0         #: reachable daemons the sweep started with
    lost_daemons: int = 0    #: daemons unreachable or never readmitted
    chunks: int = 0          #: chunks the pending points were split into
    leases: int = 0          #: sweep-chunk jobs issued (>= chunks)
    stolen: int = 0          #: chunks re-leased after a lost lease
    probations: int = 0      #: daemons demoted to probation mid-sweep
    readmissions: int = 0    #: probation daemons readmitted after re-probe
    remote_records: int = 0  #: records produced by daemon leases
    remote_cached: int = 0   #: ... of which the daemon's store served
    local_records: int = 0   #: records from the local fallback backend
    peer_records: int = 0    #: records fetched from peer stores
    #: Per-peer ledger of the peering pass: ``{"host:port":
    #: {"hits": fetched-from-here, "misses": pending keys this store
    #: did not hold}}``.  A key several daemons hold counts as a hit
    #: only at the first (fleet order) — each record is fetched once.
    peers: dict = field(default_factory=dict)

    def summary(self) -> str:
        base = super().summary()
        probation = ""
        if self.probations:
            probation = (f", {self.probations} probation(s)"
                         f"/{self.readmissions} readmitted")
        fleet = (f"fleet: {self.daemons} daemon(s)"
                 f"{f', {self.lost_daemons} lost' if self.lost_daemons else ''}"
                 f"{probation}, "
                 f"{self.chunks} chunk(s) over {self.leases} lease(s)"
                 f"{f', {self.stolen} stolen' if self.stolen else ''}; "
                 f"{self.remote_records} remote record(s) "
                 f"({self.remote_cached} store-hit), "
                 f"{self.peer_records} peer-fetched, "
                 f"{self.local_records} local")
        return f"{base}\n{fleet}"


class _Fleet:
    """Shared mutable state of one distributed run.

    ``lock``/``cond`` guard everything below; per-run invariants
    (source, timeouts, hooks) ride along so lease lanes and the
    probation prober share one context object.
    """

    def __init__(self, stats: DistributedSweepStats):
        self.lock = threading.Lock()
        self.cond = threading.Condition(self.lock)
        self.merged: dict[str, dict] = {}
        self.stats = stats
        self.lost: set[tuple[str, int]] = set()
        #: remote -> {"workers", "attempts", "next"} while demoted.
        self.probation: dict[tuple[str, int], dict] = {}
        self.breakers: dict[tuple[str, int], CircuitBreaker] = {}
        self.chunk_keys: dict[int, list[str]] = {}
        self.queue: deque[int] = deque()
        self.completed: set[int] = set()
        self.lanes: dict[tuple[str, int], int] = {}
        self.threads: list[threading.Thread] = []
        self.draining = False
        self.closed = False
        # Per-run invariants, filled in by run_distributed_sweep.
        self.source = ""
        self.key_points: dict[str, DesignPoint] = {}
        self.verify_seed: int | None = None
        self.timeout = DEFAULT_LEASE_TIMEOUT
        self.retry: RetryPolicy | None = DEFAULT_RETRY
        self.progress: Callable[[dict], None] | None = None
        self.cache: ResultCache | None = None
        self.journal: SweepJournal | None = None
        #: Coordinator trace context (the ``dse.sweep`` span), set
        #: once before any lane starts; lease lanes, peer fetches and
        #: the prober attach it so their spans — and, through the
        #: wire, every daemon-side span — join the sweep's trace.
        self.trace_ctx: dict | None = None

    def finished_locked(self) -> bool:
        return len(self.completed) >= len(self.chunk_keys)

    def active_lanes_locked(self) -> int:
        return sum(self.lanes.values())


def _probe(remote: tuple[str, int], timeout: float) -> int | None:
    """Worker count of a live daemon, or None when unreachable."""
    from repro.service.client import ServiceClient, ServiceError
    client = ServiceClient(*remote, timeout=min(timeout, 10.0))
    try:
        stats = client.stats()
    except (ServiceError, OSError, ValueError):
        return None
    workers = stats.get("workers", {}).get("workers", 1)
    return max(1, int(workers))


def _health_probe(remote: tuple[str, int], timeout: float) -> bool:
    """One ``/healthz`` round trip — the probation re-probe."""
    from repro.service.client import ServiceClient, ServiceError
    client = ServiceClient(*remote, timeout=min(timeout, 5.0))
    try:
        return bool(client.health().get("ok", True))
    except (ServiceError, OSError, ValueError):
        return False


#: Keys per ``store-has`` probe request (stays under the protocol's
#: ``MAX_STORE_KEYS`` bound).
PEER_QUERY_BATCH = 1024
#: Keys per ``store-fetch`` request — records ride along, so fetch
#: batches stay small enough that one response is a few MB at most.
PEER_FETCH_BATCH = 256


def _write_back(cache: ResultCache | None,
                records: Mapping[str, dict]) -> None:
    """Persist ok records into the coordinator's cache *now* — the
    durability half of resumable sweeps.  Written unconditionally:
    like a local run_sweep, a verified record must replace a stale
    unverified entry for the same key."""
    if cache is None:
        return
    for key, record in records.items():
        if record.get("ok"):
            cache.put(key, record)


def _peer_prefetch(remotes: Sequence[tuple[str, int]],
                   pending: Sequence[str], fleet: _Fleet,
                   want_verified: bool, timeout: float,
                   progress: Callable[[dict], None] | None) -> None:
    """Pull records the fleet's stores already hold, before any
    chunk is leased — a daemon that mapped these points in an earlier
    sweep (or was warmed by another coordinator) serves them as store
    reads instead of re-mapping them.

    Strictly best-effort: a daemon that cannot answer (unreachable,
    or an old build without the store endpoints) contributes nothing
    but is **not** retired — it can still serve leases.  Fetched
    records land in ``fleet.merged`` exactly like leased ones (and in
    the coordinator's cache, immediately), so the caller's merge and
    fallback logic need no special casing; the per-peer ledger goes
    to ``DistributedSweepStats.peers``.
    """
    from repro.service.client import ServiceClient

    inventories: dict[tuple[str, int], set[str] | None] = {}

    def inventory(remote: tuple[str, int]) -> None:
        client = ServiceClient(*remote, timeout=min(timeout, 30.0))
        found: set[str] = set()
        with trace.attach(fleet.trace_ctx), \
                trace.span("distributed.peer.inventory",
                           daemon=f"{remote[0]}:{remote[1]}",
                           keys=len(pending)):
            try:
                for start in range(0, len(pending),
                                   PEER_QUERY_BATCH):
                    found.update(client.store_has(
                        pending[start:start + PEER_QUERY_BATCH],
                        verified=want_verified))
            except Exception:  # noqa: BLE001 — best-effort peering
                inventories[remote] = None
                return
        inventories[remote] = found

    threads = []
    for remote in remotes:
        thread = threading.Thread(target=inventory, args=(remote,),
                                  daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()

    # Assign each held key to the first daemon (fleet order) holding
    # it: deterministic, and each record crosses the wire once.
    taken: set[str] = set()
    assignments: list[tuple[tuple[str, int], str, list[str]]] = []
    for remote in remotes:
        label = f"{remote[0]}:{remote[1]}"
        found = inventories.get(remote)
        if found is None:
            with fleet.lock:
                fleet.stats.peers[label] = {
                    "hits": 0, "misses": 0, "unreachable": True}
            continue
        mine = [key for key in pending
                if key in found and key not in taken]
        taken.update(mine)
        with fleet.lock:
            fleet.stats.peers[label] = {
                "hits": 0, "misses": len(pending) - len(found)}
        if mine:
            assignments.append((remote, label, mine))

    def fetch(remote: tuple[str, int], label: str,
              keys: list[str]) -> None:
        client = ServiceClient(*remote, timeout=min(timeout, 30.0))
        got: dict[str, dict] = {}
        with trace.attach(fleet.trace_ctx), \
                trace.span("distributed.peer.fetch", daemon=label,
                           keys=len(keys)):
            try:
                for start in range(0, len(keys), PEER_FETCH_BATCH):
                    got.update(client.store_fetch(
                        keys[start:start + PEER_FETCH_BATCH],
                        verified=want_verified))
            except Exception:  # noqa: BLE001 — best-effort: partial
                pass  # batches still count; the rest is leased
        wanted = set(keys)
        valid = {key: record for key, record in got.items()
                 if key in wanted and isinstance(record, dict)}
        with fleet.lock:
            for key, record in valid.items():
                fleet.merged.setdefault(key, record)
            fleet.stats.peer_records += len(valid)
            fleet.stats.peers[label]["hits"] = len(valid)
        _write_back(fleet.cache, valid)
        if fleet.journal is not None and valid:
            fleet.journal.complete(-1, list(valid))
        if trace.enabled():
            trace.count("distributed.peer_records", len(valid))
            trace.event("distributed.peer", daemon=label,
                        records=len(valid))
        if progress is not None:
            progress({"event": "peer", "daemon": label,
                      "records": len(valid)})

    threads = []
    for remote, label, keys in assignments:
        thread = threading.Thread(target=fetch,
                                  args=(remote, label, keys),
                                  daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()


def _demote(fleet: _Fleet, remote: tuple[str, int],
            error: BaseException, chunk_id: int | None) -> None:
    """Move *remote* to probation and re-queue its chunk (work
    stealing).  Called from a lease lane that just failed; sibling
    lanes of the same daemon see the probation entry and exit."""
    label = f"{remote[0]}:{remote[1]}"
    with fleet.cond:
        if fleet.closed:
            return
        if chunk_id is not None and \
                chunk_id not in fleet.completed:
            fleet.queue.append(chunk_id)
            fleet.stats.stolen += 1
        already = remote in fleet.probation or remote in fleet.lost
        if not already:
            fleet.probation[remote] = {
                "workers": fleet.lanes.get(remote, 1),
                "attempts": 0,
                "next": time.monotonic()
                + PROBE_BACKOFF.delay(1, key=label),
            }
            fleet.stats.probations += 1
        fleet.cond.notify_all()
    if not already:
        resilience_counter("fpfa_probation_demotions").inc()
        trace.count("distributed.probations")
        if trace.enabled():
            trace.event("distributed.probation", daemon=label,
                        error=str(error))
        if fleet.progress is not None:
            fleet.progress({"event": "probation", "daemon": label,
                            "error": str(error)})
    if chunk_id is not None:
        trace.count("distributed.steals")
        if trace.enabled():
            trace.event("distributed.steal", daemon=label,
                        chunk=chunk_id)


def _lease_worker(fleet: _Fleet, remote: tuple[str, int]) -> None:
    """One lease lane: pull chunks, lease them to *remote*, merge.

    Exits when every chunk is complete, the run is draining, or the
    daemon is demoted (the failed chunk is re-queued first, so a
    surviving lane — or the local fallback — steals it).  Several
    lanes may serve one daemon (one per remote worker); the first
    failure demotes them all via ``fleet.probation``.
    """
    with trace.attach(fleet.trace_ctx):
        _lease_loop(fleet, remote)


def _lease_loop(fleet: _Fleet, remote: tuple[str, int]) -> None:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(*remote,
                           timeout=min(fleet.timeout, 30.0),
                           retry=fleet.retry,
                           breaker=fleet.breakers.get(remote))
    label = f"{remote[0]}:{remote[1]}"
    try:
        while True:
            with fleet.cond:
                chunk_id = None
                while chunk_id is None:
                    if fleet.closed or fleet.draining \
                            or fleet.finished_locked() \
                            or remote in fleet.probation \
                            or remote in fleet.lost:
                        return
                    if fleet.queue:
                        candidate = fleet.queue.popleft()
                        if candidate in fleet.completed:
                            continue  # stale re-queue of a done chunk
                        chunk_id = candidate
                    else:
                        # A transiently empty queue is NOT the end: a
                        # chunk in flight on another daemon may yet
                        # fail and be re-queued, and this lane must
                        # be around to steal it.
                        fleet.cond.wait(timeout=0.2)
                chunk = fleet.chunk_keys[chunk_id]
                fleet.stats.leases += 1
            request = {
                "kind": "sweep-chunk",
                "source": fleet.source,
                "points": [fleet.key_points[key].to_dict()
                           for key in chunk],
                "verify_seed": fleet.verify_seed,
            }
            if fleet.journal is not None:
                fleet.journal.lease(chunk_id, label, chunk)
            trace.count("distributed.leases")
            if trace.enabled():
                trace.event("distributed.lease", daemon=label,
                            chunk=chunk_id, points=len(chunk))
            try:
                # The lease span covers the full round trip (submit
                # plus long-poll); its context rides the request so
                # the daemon's queue/worker spans stitch in as its
                # children.  Untraced runs add nothing to the wire.
                with trace.span("distributed.lease", daemon=label,
                                chunk=chunk_id, points=len(chunk)):
                    if trace.enabled():
                        request["trace"] = trace.context()
                    job = client.submit(request)["job"]
                    if job["state"] == "done":
                        payload = job["result"]
                    else:
                        payload = client.result(
                            job["id"], timeout=fleet.timeout)
                records = payload["records"]
                # The chunk contract: one record per leased key.
                missing = [key for key in chunk
                           if key not in records]
                if missing:
                    raise ServiceError(
                        f"daemon answered {len(records)} record(s),"
                        f" {len(missing)} leased key(s) missing",
                        retryable=False)
            except BaseException as error:  # noqa: BLE001 — a lease
                # lane must NEVER die without re-queuing its chunk
                # (the sweep would wait on it forever); any failure
                # shape — ServiceError, reset socket, torn HTTP
                # frame, open breaker, even a KeyboardInterrupt
                # landing in this thread — demotes and re-queues.
                # Non-Exception escapees (interrupts) then propagate
                # so the process still dies.
                _demote(fleet, remote, error, chunk_id)
                if not isinstance(error, Exception):
                    raise
                return
            # Durability first: records hit the cache and the
            # journal records the completion BEFORE the chunk is
            # marked done — otherwise the coordinator could observe
            # the sweep finished and close the journal while this
            # lane's `complete` line is still in flight.  A stolen
            # chunk landing twice re-writes byte-identical records
            # (puts are idempotent) and adds a redundant journal
            # line (completions are a set on load): harmless.
            _write_back(fleet.cache,
                        {key: records[key] for key in chunk})
            if fleet.journal is not None:
                fleet.journal.complete(chunk_id, chunk)
            fresh: dict[str, dict] = {}
            with fleet.cond:
                if fleet.closed:
                    return
                duplicate = chunk_id in fleet.completed
                if not duplicate:
                    for key in chunk:
                        if key not in fleet.merged:
                            fresh[key] = records[key]
                        fleet.merged.setdefault(key, records[key])
                    fleet.completed.add(chunk_id)
                    fleet.stats.remote_records += len(fresh)
                    fleet.stats.remote_cached += \
                        payload.get("stats", {}).get("cached", 0)
                    done = len(fleet.completed)
                    total = len(fleet.chunk_keys)
                    fleet.cond.notify_all()
            if duplicate:
                # A slow lane finished a chunk someone already
                # stole and completed: records are byte-identical
                # by determinism, so there is nothing to merge and
                # — deliberately — nothing to count.
                continue
            if fleet.progress is not None:
                fleet.progress({"event": "chunk", "daemon": label,
                                "done": done, "total": total,
                                "points": len(chunk)})
    finally:
        with fleet.cond:
            fleet.lanes[remote] = fleet.lanes.get(remote, 1) - 1
            fleet.cond.notify_all()


def _spawn_lanes(fleet: _Fleet, remote: tuple[str, int],
                 workers: int) -> None:
    """Start one lease lane per remote worker (capped).  Caller must
    hold no fleet lock; lane accounting happens inside."""
    lanes = min(max(1, workers), MAX_LEASES_PER_DAEMON)
    with fleet.cond:
        if fleet.closed or fleet.draining:
            return
        fleet.breakers[remote] = CircuitBreaker(
            failure_threshold=BREAKER_THRESHOLD,
            reset_timeout=BREAKER_RESET,
            label=f"{remote[0]}:{remote[1]}")
        fleet.lanes[remote] = fleet.lanes.get(remote, 0) + lanes
    for __ in range(lanes):
        thread = threading.Thread(target=_lease_worker,
                                  args=(fleet, remote), daemon=True)
        thread.start()
        fleet.threads.append(thread)


def _prober(fleet: _Fleet) -> None:
    """Re-probe probation daemons on their backoff schedule and
    readmit the ones that answer ``/healthz`` again."""
    with trace.attach(fleet.trace_ctx):
        _probe_loop(fleet)


def _probe_loop(fleet: _Fleet) -> None:
    while True:
        with fleet.cond:
            if fleet.closed or fleet.draining \
                    or fleet.finished_locked():
                return
            now = time.monotonic()
            due = [remote for remote, info
                   in fleet.probation.items()
                   if now >= info["next"]]
        for remote in due:
            label = f"{remote[0]}:{remote[1]}"
            resilience_counter("fpfa_probation_probes").inc()
            trace.count("distributed.probes")
            with trace.span("distributed.probe", daemon=label):
                healthy = _health_probe(remote, fleet.timeout)
            with fleet.cond:
                info = fleet.probation.get(remote)
                if info is None or fleet.closed or fleet.draining:
                    continue
                if not healthy:
                    info["attempts"] += 1
                    info["next"] = time.monotonic() + \
                        PROBE_BACKOFF.delay(
                            min(info["attempts"] + 1, 16),
                            key=label)
                    continue
                workers = fleet.probation.pop(remote)["workers"]
                fleet.stats.readmissions += 1
            resilience_counter(
                "fpfa_probation_readmissions").inc()
            trace.count("distributed.readmissions")
            if trace.enabled():
                trace.event("distributed.readmit", daemon=label)
            if fleet.progress is not None:
                fleet.progress({"event": "readmit",
                                "daemon": label})
            _spawn_lanes(fleet, remote, workers)
        with fleet.cond:
            if fleet.closed or fleet.draining \
                    or fleet.finished_locked():
                return
            fleet.cond.wait(timeout=0.1)


def run_distributed_sweep(
        source: str, points: Iterable[DesignPoint], *,
        remotes: str | Sequence[str],
        cache=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        timeout: float = DEFAULT_LEASE_TIMEOUT,
        verify_seed: int | None = None,
        frontends: Mapping[FrontendSpec, Frontend] | None = None,
        progress: Callable[[dict], None] | None = None,
        retry: RetryPolicy | None = DEFAULT_RETRY,
        journal: bool = True,
        ) -> SweepResult:
    """Evaluate *points* against *source* across a daemon fleet.

    Drop-in for :func:`run_sweep` (same result shape, bit-identical
    records); *remotes* names the fleet, *chunk_size* the lease
    granularity, *timeout* the per-lease deadline after which a chunk
    is re-leased.  *retry* is the in-lease policy for transient
    faults (None restores single-shot calls); *journal* controls the
    checkpoint journal written beside *cache* (on by default — it is
    what makes ``--resume`` able to report progress).  *progress*,
    when given, receives one dict per completed chunk (``event:
    "chunk"``), per peer-store fetch (``"peer"``), per demoted
    daemon (``"probation"``), per readmission (``"readmit"``) and
    per daemon lost outright (``"lost"``) — the smoke harnesses use
    it to kill daemons at deterministic moments.
    """
    with trace.span("dse.sweep", mode="distributed") as sweep_span:
        result = _run_fleet_sweep(
            source, points, remotes=remotes, cache=cache,
            chunk_size=chunk_size, timeout=timeout,
            verify_seed=verify_seed, frontends=frontends,
            progress=progress, retry=retry, journal=journal)
        sweep_span.note(points=result.stats.total,
                        cached=result.stats.cached,
                        evaluated=result.stats.evaluated,
                        failed=result.stats.failed,
                        daemons=result.stats.daemons)
    return result


def _run_fleet_sweep(
        source: str, points: Iterable[DesignPoint], *,
        remotes: str | Sequence[str],
        cache=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        timeout: float = DEFAULT_LEASE_TIMEOUT,
        verify_seed: int | None = None,
        frontends: Mapping[FrontendSpec, Frontend] | None = None,
        progress: Callable[[dict], None] | None = None,
        retry: RetryPolicy | None = DEFAULT_RETRY,
        journal: bool = True,
        ) -> SweepResult:
    started = time.perf_counter()
    points = list(points)
    cache = _resolve_cache(cache)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    stats = DistributedSweepStats(total=len(points))

    # Dedup + local-cache pass: exactly run_sweep's front half.
    by_key: dict[str, dict | None] = {}
    key_order: list[str] = []
    point_keys: list[str] = []
    key_points: dict[str, DesignPoint] = {}
    for point in points:
        key = cache_key(source, point)
        point_keys.append(key)
        if key not in by_key:
            by_key[key] = None
            key_order.append(key)
            key_points[key] = point
    stats.unique = len(key_order)

    pending: list[str] = []
    for key in key_order:
        record = cache.get(key) if cache is not None else None
        if record is not None and verify_seed is not None \
                and record.get("ok") and not record.get("verified"):
            cache.downgrade_hit()
            record = None
        if record is not None:
            by_key[key] = record
            stats.cached += 1
        else:
            pending.append(key)
    stats.evaluated = len(pending)

    fleet = _Fleet(stats=stats)
    fleet.source = source
    fleet.key_points = key_points
    fleet.verify_seed = verify_seed
    fleet.timeout = timeout
    fleet.retry = retry
    fleet.progress = progress
    fleet.cache = cache
    # Inside the caller's dse.sweep span, so every lane and peer
    # thread (and, via the wire, every daemon) parents to the sweep.
    fleet.trace_ctx = trace.context()
    if pending:
        journal_path = journal_path_for(cache) if journal else None
        if journal_path is not None:
            try:
                fleet.journal = SweepJournal(
                    journal_path,
                    sweep_id(source, key_order, verify_seed))
                fleet.journal.begin(total=len(key_order),
                                    pending=pending)
            except OSError:
                fleet.journal = None  # journal is best-effort

        # Probe the fleet (concurrently — a down daemon costs one
        # connect timeout, not one per fleet member in sequence);
        # unreachable daemons never get a lease.
        fleet_pairs = parse_remotes(remotes)
        probe_threads: list[threading.Thread] = []
        probed: dict[tuple[str, int], int | None] = {}

        def probe_one(remote: tuple[str, int]) -> None:
            probed[remote] = _probe(remote, timeout)

        for remote in fleet_pairs:
            thread = threading.Thread(target=probe_one,
                                      args=(remote,), daemon=True)
            thread.start()
            probe_threads.append(thread)
        for thread in probe_threads:
            thread.join()
        alive: list[tuple[tuple[str, int], int]] = []
        for remote in fleet_pairs:
            workers = probed[remote]
            if workers is None:
                fleet.lost.add(remote)
                stats.lost_daemons += 1
                if trace.enabled():
                    trace.event("distributed.retire",
                                daemon=f"{remote[0]}:{remote[1]}",
                                error="unreachable at probe")
                if progress is not None:
                    progress({"event": "lost",
                              "daemon": f"{remote[0]}:{remote[1]}",
                              "error": "unreachable at probe"})
            else:
                alive.append((remote, workers))
        stats.daemons = len(alive) + stats.lost_daemons
        stats.workers = max(
            [1] + [workers for __, workers in alive])

        # Peering pass: before leasing any chunk, pull every pending
        # record some daemon's *store* already holds — a store read
        # on the peer instead of a re-map on its workers.
        if alive:
            _peer_prefetch([remote for remote, __ in alive],
                           pending, fleet,
                           verify_seed is not None, timeout,
                           progress)

        # Only keys no peer could serve are leased as chunks.
        to_lease = [key for key in pending
                    if key not in fleet.merged]
        chunk_lists = [to_lease[index:index + chunk_size]
                       for index in range(0, len(to_lease),
                                          chunk_size)]
        stats.chunks = len(chunk_lists)
        fleet.chunk_keys = dict(enumerate(chunk_lists))
        fleet.queue = deque(fleet.chunk_keys)

        if alive and chunk_lists:
            for remote, workers in alive:
                _spawn_lanes(fleet, remote, workers)
            prober = threading.Thread(target=_prober,
                                      args=(fleet,), daemon=True)
            prober.start()
            # Ride the sweep: done when every chunk completed, or
            # when no lane is left alive to finish the rest (every
            # daemon demoted/lost — drain to the local fallback; a
            # probation daemon only rejoins a *running* sweep, so
            # readmission needs at least one survivor to keep it
            # running).
            with fleet.cond:
                while True:
                    if fleet.finished_locked():
                        break
                    if fleet.active_lanes_locked() == 0:
                        fleet.draining = True
                        break
                    fleet.cond.wait(timeout=0.2)
                fleet.cond.notify_all()
            prober.join(timeout=10.0)

        # Daemons still on probation when the music stops never made
        # it back: count them lost, exactly like a probe failure.
        with fleet.cond:
            for remote in list(fleet.probation):
                fleet.probation.pop(remote)
                fleet.lost.add(remote)
                stats.lost_daemons += 1
                label = f"{remote[0]}:{remote[1]}"
                if progress is not None:
                    progress({"event": "lost", "daemon": label,
                              "error": "still on probation at "
                                       "sweep end"})

        # Whatever the fleet did not deliver runs locally — the
        # sweep completes no matter how many daemons died.
        with fleet.lock:
            leftover = [key for key in pending
                        if key not in fleet.merged]
        if leftover:
            local = run_sweep(
                source, [key_points[key] for key in leftover],
                cache=cache, verify_seed=verify_seed,
                frontends=frontends)
            with fleet.lock:
                for key, record in zip(leftover, local.records):
                    fleet.merged[key] = record
            stats.local_records = len(leftover)
            stats.workers = max(stats.workers, local.stats.workers)
            if fleet.journal is not None:
                fleet.journal.complete(-2, leftover)
            trace.count("distributed.fallbacks")
            if trace.enabled():
                trace.event("distributed.fallback",
                            points=len(leftover))
            if progress is not None:
                progress({"event": "fallback",
                          "points": len(leftover)})

        with fleet.cond:
            for key in pending:
                by_key[key] = fleet.merged[key]
            fleet.closed = True
            fleet.cond.notify_all()
        if fleet.journal is not None:
            fleet.journal.end()
            fleet.journal.close()

    records = [by_key[key] for key in point_keys]
    stats.failed = sum(1 for key in key_order
                       if not by_key[key]["ok"])
    stats.elapsed = time.perf_counter() - started
    return SweepResult(points=points, records=records, stats=stats)
