"""Distributed sweep sharding across ``fpfa-map serve`` daemons.

:func:`run_distributed_sweep` is :func:`repro.dse.runner.run_sweep`
stretched over a fleet: the coordinator deduplicates the requested
points exactly as a local sweep would, satisfies what it can from its
own :class:`~repro.dse.cache.ResultCache`, then asks the fleet's
*stores* before asking its *workers* — a peering pass over the
``store-has``/``store-fetch`` endpoints pulls every record some
daemon already holds (one daemon's finished sweep warms every
coordinator; see ``docs/store.md``) — and only the still-missing
keys are split into *chunks* and leased to remote daemons through
the service's ``sweep-chunk`` job kind.  Each lease is one HTTP job;
the daemon runs the chunk through its worker pool against its
artifact store and answers with records keyed by cache key.

Fault model — the sweep **always completes**:

* a daemon that is unreachable at probe time is dropped from the
  fleet before any lease is issued;
* a chunk whose daemon dies, times out (``timeout`` per lease) or
  falls behind is *re-leased*: the chunk goes back on the shared
  queue and any surviving daemon steals it (the daemon that failed
  is retired from the fleet);
* when every daemon is gone, the leftover chunks are evaluated
  locally — plain :func:`run_sweep`, the fallback backend.

Determinism is what makes stealing safe: the mapping flow is
deterministic, so a chunk evaluated twice (a slow daemon finishing a
lease the coordinator already re-issued) yields byte-identical
records, and merging by cache key is idempotent.

Invariants
----------
* Records are **bit-identical** to a purely local ``run_sweep`` of
  the same points: remote daemons run the same
  :func:`~repro.dse.runner.evaluate_point`, records are keyed by the
  same :func:`~repro.dse.cache.cache_key`, and fresh records are
  written back to the coordinator's cache in the same on-disk
  format — local and remote runs warm each other.
* One record per requested point, in request order, duplicates
  included — the ``run_sweep`` contract, unchanged.
* An unverified cached record never satisfies a verifying sweep
  (the runner's rule, applied on both sides of the wire).
"""

from __future__ import annotations

import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence
from urllib.parse import urlsplit

from repro.core.pipeline import Frontend
from repro.dse.cache import ResultCache, cache_key
from repro.dse.runner import (
    FrontendSpec,
    SweepResult,
    SweepStats,
    _resolve_cache,
    run_sweep,
)
from repro.dse.space import DesignPoint
from repro.obs import trace

#: Points per lease by default: big enough to amortise one HTTP round
#: trip over several mappings, small enough that re-evaluating a lost
#: chunk is cheap.
DEFAULT_CHUNK_SIZE = 8
#: Seconds one lease may run before the chunk is re-leased.
DEFAULT_LEASE_TIMEOUT = 120.0
#: Cap on concurrent leases per daemon (matched to the daemon's own
#: worker count below this cap — one lease per worker keeps every
#: remote pool busy without flooding its queue).
MAX_LEASES_PER_DAEMON = 8


class DistributedError(RuntimeError):
    """The fleet specification itself is unusable (bad URL)."""


def parse_remote(spec: str) -> tuple[str, int]:
    """``URL`` / ``host:port`` / ``host`` -> ``(host, port)``."""
    from repro.service.protocol import DEFAULT_PORT
    text = spec.strip()
    if not text:
        raise DistributedError("empty remote daemon address")
    if "//" not in text:
        text = f"//{text}"
    parts = urlsplit(text)
    if parts.scheme not in ("", "http"):
        raise DistributedError(
            f"remote {spec!r}: only http daemons exist")
    try:
        host, port = parts.hostname, parts.port
    except ValueError as error:
        raise DistributedError(f"remote {spec!r}: {error}")
    if not host:
        raise DistributedError(f"remote {spec!r} has no host")
    return host, port if port is not None else DEFAULT_PORT


def parse_remotes(specs) -> list[tuple[str, int]]:
    """Normalise a fleet spec into unique ``(host, port)`` pairs,
    order preserved.  Accepts one string (commas separate daemons), a
    sequence of strings, already-parsed ``(host, port)`` pairs, or a
    mix — so a pre-parsed fleet passes through unchanged."""
    if isinstance(specs, str):
        specs = [specs]
    pairs: list[tuple[str, int]] = []

    def add(pair: tuple[str, int]) -> None:
        if pair not in pairs:
            pairs.append(pair)

    for spec in specs:
        if isinstance(spec, tuple):
            if len(spec) != 2:
                raise DistributedError(
                    f"remote pair {spec!r} is not (host, port)")
            add((str(spec[0]), int(spec[1])))
            continue
        for item in str(spec).split(","):
            if item.strip():
                add(parse_remote(item))
    return pairs


@dataclass
class DistributedSweepStats(SweepStats):
    """Sweep provenance plus the distribution ledger.

    Inherits the local fields (``cached`` counts the *coordinator's*
    cache hits; ``evaluated`` counts points the coordinator had to
    source elsewhere — from daemons or the local fallback).
    """

    daemons: int = 0         #: reachable daemons the sweep started with
    lost_daemons: int = 0    #: daemons retired after a failed lease
    chunks: int = 0          #: chunks the pending points were split into
    leases: int = 0          #: sweep-chunk jobs issued (>= chunks)
    stolen: int = 0          #: chunks re-leased after a lost lease
    remote_records: int = 0  #: records produced by daemon leases
    remote_cached: int = 0   #: ... of which the daemon's store served
    local_records: int = 0   #: records from the local fallback backend
    peer_records: int = 0    #: records fetched from peer stores
    #: Per-peer ledger of the peering pass: ``{"host:port":
    #: {"hits": fetched-from-here, "misses": pending keys this store
    #: did not hold}}``.  A key several daemons hold counts as a hit
    #: only at the first (fleet order) — each record is fetched once.
    peers: dict = field(default_factory=dict)

    def summary(self) -> str:
        base = super().summary()
        fleet = (f"fleet: {self.daemons} daemon(s)"
                 f"{f', {self.lost_daemons} lost' if self.lost_daemons else ''}, "
                 f"{self.chunks} chunk(s) over {self.leases} lease(s)"
                 f"{f', {self.stolen} stolen' if self.stolen else ''}; "
                 f"{self.remote_records} remote record(s) "
                 f"({self.remote_cached} store-hit), "
                 f"{self.peer_records} peer-fetched, "
                 f"{self.local_records} local")
        return f"{base}\n{fleet}"


@dataclass
class _Fleet:
    """Shared mutable state of one distributed run (lock-guarded)."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    merged: dict[str, dict] = field(default_factory=dict)
    stats: DistributedSweepStats = field(
        default_factory=DistributedSweepStats)
    lost: set[tuple[str, int]] = field(default_factory=set)
    done_chunks: int = 0


def _probe(remote: tuple[str, int], timeout: float) -> int | None:
    """Worker count of a live daemon, or None when unreachable."""
    from repro.service.client import ServiceClient, ServiceError
    client = ServiceClient(*remote, timeout=min(timeout, 10.0))
    try:
        stats = client.stats()
    except (ServiceError, OSError, ValueError):
        return None
    workers = stats.get("workers", {}).get("workers", 1)
    return max(1, int(workers))


#: Keys per ``store-has`` probe request (stays under the protocol's
#: ``MAX_STORE_KEYS`` bound).
PEER_QUERY_BATCH = 1024
#: Keys per ``store-fetch`` request — records ride along, so fetch
#: batches stay small enough that one response is a few MB at most.
PEER_FETCH_BATCH = 256


def _peer_prefetch(remotes: Sequence[tuple[str, int]],
                   pending: Sequence[str], fleet: _Fleet,
                   want_verified: bool, timeout: float,
                   progress: Callable[[dict], None] | None) -> None:
    """Pull records the fleet's stores already hold, before any
    chunk is leased — a daemon that mapped these points in an earlier
    sweep (or was warmed by another coordinator) serves them as store
    reads instead of re-mapping them.

    Strictly best-effort: a daemon that cannot answer (unreachable,
    or an old build without the store endpoints) contributes nothing
    but is **not** retired — it can still serve leases.  Fetched
    records land in ``fleet.merged`` exactly like leased ones, so
    the caller's merge, cache write-back and fallback logic need no
    special casing; the per-peer ledger goes to
    ``DistributedSweepStats.peers``.
    """
    from repro.service.client import ServiceClient, ServiceError

    inventories: dict[tuple[str, int], set[str] | None] = {}

    def inventory(remote: tuple[str, int]) -> None:
        client = ServiceClient(*remote, timeout=min(timeout, 30.0))
        found: set[str] = set()
        try:
            for start in range(0, len(pending), PEER_QUERY_BATCH):
                found.update(client.store_has(
                    pending[start:start + PEER_QUERY_BATCH],
                    verified=want_verified))
        except (ServiceError, OSError, ValueError):
            inventories[remote] = None
            return
        inventories[remote] = found

    threads = []
    for remote in remotes:
        thread = threading.Thread(target=inventory, args=(remote,),
                                  daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()

    # Assign each held key to the first daemon (fleet order) holding
    # it: deterministic, and each record crosses the wire once.
    taken: set[str] = set()
    assignments: list[tuple[tuple[str, int], str, list[str]]] = []
    for remote in remotes:
        label = f"{remote[0]}:{remote[1]}"
        found = inventories.get(remote)
        if found is None:
            with fleet.lock:
                fleet.stats.peers[label] = {
                    "hits": 0, "misses": 0, "unreachable": True}
            continue
        mine = [key for key in pending
                if key in found and key not in taken]
        taken.update(mine)
        with fleet.lock:
            fleet.stats.peers[label] = {
                "hits": 0, "misses": len(pending) - len(found)}
        if mine:
            assignments.append((remote, label, mine))

    def fetch(remote: tuple[str, int], label: str,
              keys: list[str]) -> None:
        client = ServiceClient(*remote, timeout=min(timeout, 30.0))
        got: dict[str, dict] = {}
        try:
            for start in range(0, len(keys), PEER_FETCH_BATCH):
                got.update(client.store_fetch(
                    keys[start:start + PEER_FETCH_BATCH],
                    verified=want_verified))
        except (ServiceError, OSError, ValueError):
            pass  # partial batches still count; the rest is leased
        wanted = set(keys)
        valid = {key: record for key, record in got.items()
                 if key in wanted and isinstance(record, dict)}
        with fleet.lock:
            for key, record in valid.items():
                fleet.merged.setdefault(key, record)
            fleet.stats.peer_records += len(valid)
            fleet.stats.peers[label]["hits"] = len(valid)
        trace.count("distributed.peer_records", len(valid))
        if trace.enabled():
            trace.event("distributed.peer", daemon=label,
                        records=len(valid))
        if progress is not None:
            progress({"event": "peer", "daemon": label,
                      "records": len(valid)})

    threads = []
    for remote, label, keys in assignments:
        thread = threading.Thread(target=fetch,
                                  args=(remote, label, keys),
                                  daemon=True)
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join()


def _lease_worker(remote: tuple[str, int], source: str,
                  chunks: "queue_module.SimpleQueue[list[str]]",
                  key_points: Mapping[str, DesignPoint],
                  verify_seed: int | None, timeout: float,
                  fleet: _Fleet, total_chunks: int,
                  progress: Callable[[dict], None] | None) -> None:
    """One lease lane: pull chunks, lease them to *remote*, merge.

    Exits when the queue is drained or the daemon fails a lease (the
    chunk is re-queued first, so a surviving lane — or the local
    fallback — picks it up).  Several lanes may serve one daemon
    (one per remote worker); the first failure retires them all via
    ``fleet.lost``.
    """
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(*remote, timeout=min(timeout, 30.0))
    label = f"{remote[0]}:{remote[1]}"
    while True:
        with fleet.lock:
            dead = remote in fleet.lost
            finished = fleet.done_chunks >= total_chunks
        if dead or finished:
            return
        try:
            # A transiently empty queue is NOT the end: a chunk still
            # in flight on another daemon may yet fail and be
            # re-queued, and this lane must be around to steal it —
            # so wait briefly and re-check instead of exiting.  Every
            # in-flight lease either merges (done_chunks grows) or
            # re-queues its chunk within the lease timeout, so the
            # wait always resolves; the lane that merges the final
            # chunk posts a ``None`` sentinel so waiting lanes drain
            # immediately instead of riding out the poll interval.
            chunk = chunks.get(timeout=0.2)
        except queue_module.Empty:
            continue
        if chunk is None:
            chunks.put(None)  # pass the drain signal along
            return
        request = {
            "kind": "sweep-chunk",
            "source": source,
            "points": [key_points[key].to_dict() for key in chunk],
            "verify_seed": verify_seed,
        }
        with fleet.lock:
            fleet.stats.leases += 1
        trace.count("distributed.leases")
        if trace.enabled():
            trace.event("distributed.lease", daemon=label,
                        points=len(chunk))
        try:
            job = client.submit(request)["job"]
            if job["state"] == "done":
                payload = job["result"]
            else:
                payload = client.result(job["id"], timeout=timeout)
            records = payload["records"]
            # The chunk contract: exactly one record per leased key.
            missing = [key for key in chunk if key not in records]
            if missing:
                raise ServiceError(
                    f"daemon answered {len(records)} record(s), "
                    f"{len(missing)} leased key(s) missing")
        except (ServiceError, OSError, ValueError) as error:
            # Dead, lagging or misbehaving daemon: re-queue the chunk
            # for a sibling (work stealing) and retire the daemon.
            chunks.put(chunk)
            with fleet.lock:
                first_loss = remote not in fleet.lost
                fleet.lost.add(remote)
                if first_loss:
                    fleet.stats.lost_daemons += 1
                fleet.stats.stolen += 1
            trace.count("distributed.steals")
            if trace.enabled():
                trace.event("distributed.steal", daemon=label,
                            points=len(chunk))
                if first_loss:
                    trace.event("distributed.retire", daemon=label,
                                error=str(error))
            if progress is not None:
                progress({"event": "lost", "daemon": label,
                          "error": str(error)})
            return
        with fleet.lock:
            for key in chunk:
                fleet.merged[key] = records[key]
            fleet.stats.remote_records += len(chunk)
            fleet.stats.remote_cached += \
                payload.get("stats", {}).get("cached", 0)
            fleet.done_chunks += 1
            done = fleet.done_chunks
        if done >= total_chunks:
            chunks.put(None)  # wake waiting lanes: nothing left
        if progress is not None:
            progress({"event": "chunk", "daemon": label,
                      "done": done, "total": total_chunks,
                      "points": len(chunk)})


def run_distributed_sweep(
        source: str, points: Iterable[DesignPoint], *,
        remotes: str | Sequence[str],
        cache=None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        timeout: float = DEFAULT_LEASE_TIMEOUT,
        verify_seed: int | None = None,
        frontends: Mapping[FrontendSpec, Frontend] | None = None,
        progress: Callable[[dict], None] | None = None,
        ) -> SweepResult:
    """Evaluate *points* against *source* across a daemon fleet.

    Drop-in for :func:`run_sweep` (same result shape, bit-identical
    records); *remotes* names the fleet, *chunk_size* the lease
    granularity, *timeout* the per-lease deadline after which a chunk
    is re-leased.  *progress*, when given, receives one dict per
    completed chunk (``event: "chunk"``), per peer-store fetch
    (``event: "peer"``) and per retired daemon (``event: "lost"``) —
    the smoke harness uses it to kill daemons at deterministic
    moments.
    """
    started = time.perf_counter()
    points = list(points)
    cache = _resolve_cache(cache)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    stats = DistributedSweepStats(total=len(points))

    # Dedup + local-cache pass: exactly run_sweep's front half.
    by_key: dict[str, dict | None] = {}
    key_order: list[str] = []
    point_keys: list[str] = []
    key_points: dict[str, DesignPoint] = {}
    for point in points:
        key = cache_key(source, point)
        point_keys.append(key)
        if key not in by_key:
            by_key[key] = None
            key_order.append(key)
            key_points[key] = point
    stats.unique = len(key_order)

    pending: list[str] = []
    for key in key_order:
        record = cache.get(key) if cache is not None else None
        if record is not None and verify_seed is not None \
                and record.get("ok") and not record.get("verified"):
            cache.downgrade_hit()
            record = None
        if record is not None:
            by_key[key] = record
            stats.cached += 1
        else:
            pending.append(key)
    stats.evaluated = len(pending)

    fleet = _Fleet(stats=stats)
    if pending:
        # Probe the fleet (concurrently — a down daemon costs one
        # connect timeout, not one per fleet member in sequence);
        # unreachable daemons never get a lease.
        fleet_pairs = parse_remotes(remotes)
        probe_threads: list[threading.Thread] = []
        probed: dict[tuple[str, int], int | None] = {}

        def probe_one(remote: tuple[str, int]) -> None:
            probed[remote] = _probe(remote, timeout)

        for remote in fleet_pairs:
            thread = threading.Thread(target=probe_one,
                                      args=(remote,), daemon=True)
            thread.start()
            probe_threads.append(thread)
        for thread in probe_threads:
            thread.join()
        alive: list[tuple[tuple[str, int], int]] = []
        for remote in fleet_pairs:
            workers = probed[remote]
            if workers is None:
                fleet.lost.add(remote)
                stats.lost_daemons += 1
                if trace.enabled():
                    trace.event("distributed.retire",
                                daemon=f"{remote[0]}:{remote[1]}",
                                error="unreachable at probe")
                if progress is not None:
                    progress({"event": "lost",
                              "daemon": f"{remote[0]}:{remote[1]}",
                              "error": "unreachable at probe"})
            else:
                alive.append((remote, workers))
        stats.daemons = len(alive) + stats.lost_daemons
        stats.workers = max(
            [1] + [workers for __, workers in alive])

        # Peering pass: before leasing any chunk, pull every pending
        # record some daemon's *store* already holds — a store read
        # on the peer instead of a re-map on its workers.
        if alive:
            _peer_prefetch([remote for remote, __ in alive],
                           pending, fleet,
                           verify_seed is not None, timeout,
                           progress)

        # Only keys no peer could serve are leased as chunks.
        to_lease = [key for key in pending
                    if key not in fleet.merged]
        chunk_lists = [to_lease[index:index + chunk_size]
                       for index in range(0, len(to_lease),
                                          chunk_size)]
        stats.chunks = len(chunk_lists)

        if alive and chunk_lists:
            chunks: queue_module.SimpleQueue = \
                queue_module.SimpleQueue()
            for chunk in chunk_lists:
                chunks.put(chunk)
            threads = []
            for remote, workers in alive:
                for __ in range(min(workers,
                                    MAX_LEASES_PER_DAEMON)):
                    thread = threading.Thread(
                        target=_lease_worker,
                        args=(remote, source, chunks, key_points,
                              verify_seed, timeout, fleet,
                              len(chunk_lists), progress),
                        daemon=True)
                    thread.start()
                    threads.append(thread)
            for thread in threads:
                thread.join()
        #: Keys the fleet delivered (before any local fallback) —
        #: these are the records the coordinator's cache has not
        #: seen yet and must absorb below.
        remote_keys = set(fleet.merged)

        # Whatever the fleet did not deliver runs locally — the
        # sweep completes no matter how many daemons died.
        leftover = [key for key in pending
                    if key not in fleet.merged]
        if leftover:
            local = run_sweep(
                source, [key_points[key] for key in leftover],
                cache=cache, verify_seed=verify_seed,
                frontends=frontends)
            for key, record in zip(leftover, local.records):
                fleet.merged[key] = record
            stats.local_records = len(leftover)
            stats.workers = max(stats.workers, local.stats.workers)
            trace.count("distributed.fallbacks")
            if trace.enabled():
                trace.event("distributed.fallback",
                            points=len(leftover))
            if progress is not None:
                progress({"event": "fallback",
                          "points": len(leftover)})

        for key in pending:
            by_key[key] = fleet.merged[key]
        if cache is not None:
            # Remote-sourced records warm the local cache (the
            # fallback run already wrote its own) — ok-only, the
            # shared admission rule, and written unconditionally:
            # like a local run_sweep, a verified record must replace
            # a stale unverified entry for the same key.
            for key in remote_keys:
                record = by_key[key]
                if record.get("ok"):
                    cache.put(key, record)

    records = [by_key[key] for key in point_keys]
    stats.failed = sum(1 for key in key_order
                       if not by_key[key]["ok"])
    stats.elapsed = time.perf_counter() - started
    return SweepResult(points=points, records=records, stats=stats)
