"""Pareto-frontier extraction and best-point selection.

Sweep records carry several competing objectives — program cycles,
the energy proxy, and the silicon the configuration would spend (a
*resource* proxy).  No single point minimises them all, so reporting
means two things: the set of non-dominated trade-offs (the Pareto
frontier) and, when the caller does want one answer, a scalarised
best point under min-max-normalised weights.

All objectives are *minimised*.  Maximise-style metrics are exposed
through negating aliases (``-alu_util``, ``-locality``, ...).

Invariants
----------
* ``pareto_front`` preserves input order, keeps the first witness of
  duplicate objective vectors, and is idempotent: the frontier of a
  frontier is itself.
* Only ``ok`` records participate; failure records can never
  dominate or win.
* ``best_record`` is reproducible: min-max normalisation is computed
  over the candidate set itself and ties break toward earlier
  records.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.arch.params import TileParams
from repro.eval.report import render_table

#: Fallback for dimensions a sweep left at their paper defaults.
_DEFAULT_TILE = TileParams()

#: Default trade-off axes: time, the energy proxy, and area.
DEFAULT_OBJECTIVES = ("cycles", "energy", "resource")


def objective_value(record: Mapping, name: str) -> float:
    """The value of objective *name* for one ok record.

    Resolution order: a leading ``-`` negates (turns a
    bigger-is-better metric into a minimised objective); ``resource``
    is the derived area proxy ALUs x crossbar buses; otherwise the
    name is looked up in the record's metrics, then its config.
    """
    if name.startswith("-"):
        return -objective_value(record, name[1:])
    if name == "resource":
        config = record.get("config", {})
        return float(config.get("n_pps", _DEFAULT_TILE.n_pps) *
                     config.get("n_buses", _DEFAULT_TILE.n_buses))
    metrics = record.get("metrics", {})
    if name in metrics:
        return float(metrics[name])
    config = record.get("config", {})
    if name in config:
        return float(config[name])
    raise KeyError(f"record has no objective {name!r}")


def dominates(first: Mapping, second: Mapping,
              objectives: Sequence[str] = DEFAULT_OBJECTIVES) -> bool:
    """True when *first* is no worse everywhere and better somewhere."""
    strictly_better = False
    for name in objectives:
        a = objective_value(first, name)
        b = objective_value(second, name)
        if a > b:
            return False
        if a < b:
            strictly_better = True
    return strictly_better


def pareto_front(records: Sequence[Mapping],
                 objectives: Sequence[str] = DEFAULT_OBJECTIVES
                 ) -> list[dict]:
    """The non-dominated subset of the ok *records*, input order
    preserved; duplicate objective vectors keep their first witness."""
    objectives = tuple(objectives)
    if not objectives:
        raise ValueError("pareto_front needs >= 1 objective")
    candidates = [record for record in records if record.get("ok")]
    # Resolve every objective vector once; dominance checks are then
    # pure float compares instead of O(n^2 * k) metric lookups.
    vectors = [tuple(objective_value(record, name)
                     for name in objectives)
               for record in candidates]

    def dominated(vector: tuple) -> bool:
        return any(other != vector and
                   all(a <= b for a, b in zip(other, vector))
                   for other in vectors)

    front: list[dict] = []
    seen_vectors: set[tuple] = set()
    for record, vector in zip(candidates, vectors):
        if vector in seen_vectors or dominated(vector):
            continue
        seen_vectors.add(vector)
        front.append(record)
    return front


def best_record(records: Sequence[Mapping],
                objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                weights: Mapping[str, float] | None = None
                ) -> dict | None:
    """The single record minimising the weighted sum of min-max
    normalised objectives (ties break toward earlier records)."""
    candidates = [record for record in records if record.get("ok")]
    if not candidates:
        return None
    weights = dict(weights or {})
    spans = {}
    for name in objectives:
        values = [objective_value(record, name)
                  for record in candidates]
        low, high = min(values), max(values)
        spans[name] = (low, (high - low) or 1.0)

    def score(record) -> float:
        total = 0.0
        for name in objectives:
            low, span = spans[name]
            normalised = (objective_value(record, name) - low) / span
            total += weights.get(name, 1.0) * normalised
        return total

    return min(candidates, key=score)


def frontier_table(records: Sequence[Mapping],
                   objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                   title: str | None = "Pareto frontier") -> str:
    """Render the frontier of *records* as a fixed-width table."""
    front = pareto_front(records, objectives)
    rows = []
    for record in front:
        row = dict(record.get("config", {}))
        for name in objectives:
            row[name] = objective_value(record, name)
        rows.append(row)
    rows.sort(key=lambda row: row[objectives[0]])
    return render_table(rows, title=title)
