"""Coordinator checkpoint journal for resumable sweeps.

A distributed sweep writes an append-only NDJSON journal beside its
:class:`~repro.dse.cache.ResultCache` — one line per state change:

``begin``
    ``{"event": "begin", "sweep": <id>, "at": <wall>, "total": N,
    "pending": [...keys]}`` — the deduplicated keys still missing
    after the coordinator's cache pass.
``lease``
    ``{"event": "lease", "sweep": <id>, "chunk": i,
    "daemon": "host:port", "keys": [...]}`` — a chunk went out.
``complete``
    ``{"event": "complete", "sweep": <id>, "chunk": i,
    "keys": [...]}`` — the chunk's records were merged *and written
    to the cache* (the write-back happens before the journal line,
    so a completed chunk is always durable).
``end``
    ``{"event": "end", "sweep": <id>}`` — the sweep finished.

The journal is a *progress record*, not the source of truth: what
makes a sweep resumable is that records land in the on-disk cache
incrementally, so a re-run's cache pass simply skips everything a
killed coordinator already finished.  The journal tells the re-run
(and the operator, and the chaos harness) **how far** the previous
attempt got — ``fpfa-map explore --resume`` uses it to report the
recovered/remaining split and to refuse a resume of a *different*
sweep over the same cache.

Torn tails are expected: a coordinator killed mid-write leaves a
partial last line, and :func:`load_journal` silently drops it —
everything before it was flushed line-atomically.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

#: Journal filename beside the cache/store root.
JOURNAL_NAME = "sweep-journal.ndjson"


def sweep_id(source: str, point_keys: Sequence[str],
             verify_seed: int | None) -> str:
    """Stable identity of one sweep: the source, the *ordered*
    requested cache keys, and whether it verifies.  Two runs with the
    same inputs get the same id — which is exactly the condition
    under which resuming one from the other is sound."""
    payload = json.dumps(
        {"source": source, "keys": list(point_keys),
         "verify": verify_seed},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def journal_path_for(cache) -> pathlib.Path | None:
    """Where the journal lives for *cache* (None when cacheless —
    without a durable store there is nothing to resume from)."""
    root = getattr(cache, "root", None)
    if root is None:
        return None
    return pathlib.Path(root) / JOURNAL_NAME


class SweepJournal:
    """Append-only writer; one line per event, flushed per line.

    Thread-safe — lease lanes complete chunks concurrently.  Opening
    a journal truncates any previous one: the cache already absorbed
    the old run's completed records, so its journal has served its
    purpose (and :func:`load_journal` must see *this* run's pending
    set, not a stale one).
    """

    def __init__(self, path, sweep: str):
        self.path = pathlib.Path(path)
        self.sweep = sweep
        self._lock = threading.Lock()
        self._file = open(self.path, "w", encoding="utf-8")

    def _append(self, payload: Mapping) -> None:
        line = json.dumps(dict(payload, sweep=self.sweep),
                          sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def begin(self, *, total: int,
              pending: Iterable[str]) -> None:
        self._append({"event": "begin", "at": time.time(),  # fpfa-lint: wall-clock
                      "total": total, "pending": list(pending)})

    def lease(self, chunk: int, daemon: str,
              keys: Sequence[str]) -> None:
        self._append({"event": "lease", "chunk": chunk,
                      "daemon": daemon, "keys": list(keys)})

    def complete(self, chunk: int, keys: Sequence[str]) -> None:
        self._append({"event": "complete", "chunk": chunk,
                      "keys": list(keys)})

    def end(self) -> None:
        self._append({"event": "end"})

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class JournalState:
    """What a (possibly torn) journal says about the last run."""

    sweep: str = ""
    total: int = 0
    pending: list[str] = field(default_factory=list)
    completed: set[str] = field(default_factory=set)
    leases: int = 0
    ended: bool = False

    @property
    def remaining(self) -> list[str]:
        return [key for key in self.pending
                if key not in self.completed]


def load_journal(path) -> JournalState | None:
    """Parse the journal at *path*; None when absent or empty.

    Tolerant by design: a torn (half-written) tail line and any
    unrecognised event are skipped — the journal only ever grows by
    whole flushed lines before them.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except (FileNotFoundError, OSError):
        return None
    state = JournalState()
    seen_begin = False
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue  # torn tail (or corruption): ignore the line
        if not isinstance(entry, dict):
            continue
        event = entry.get("event")
        if event == "begin":
            # A journal holds at most one run (begin truncates), but
            # stay safe against concatenation: the last begin wins.
            state = JournalState(
                sweep=str(entry.get("sweep", "")),
                total=int(entry.get("total", 0)),
                pending=[str(key) for key
                         in entry.get("pending", [])])
            seen_begin = True
        elif event == "lease":
            state.leases += 1
        elif event == "complete":
            state.completed.update(
                str(key) for key in entry.get("keys", []))
        elif event == "end":
            state.ended = True
    return state if seen_begin else None
