"""Design-space exploration over the FPFA mapping flow.

The paper maps one program onto one fixed tile; §VI names the bus and
port counts as *constraints*, which makes the architecture itself a
search space.  This package treats every kernel x :class:`TileParams`
x template-library x transform-option combination as one *design
point* and explores sets of them as a batch workload:

* :mod:`repro.dse.space` — declarative parameter spaces (grids,
  random samples, explicit point lists) over tile fields, stock
  template libraries, ``map_graph`` options and tile-array fields
  (``tiles``, ``topology``, ... — the multi-tile axis of
  :mod:`repro.multitile`);
* :mod:`repro.dse.runner` — a chunked ``multiprocessing`` sweep
  runner that tolerates per-point failures and records the
  :func:`repro.eval.metrics.mapping_metrics` of every mapping;
* :mod:`repro.dse.cache` — a content-addressed on-disk result cache
  keyed by a stable hash of (source, design point), so repeated and
  overlapping sweeps skip re-mapping entirely;
* :mod:`repro.dse.pareto` — Pareto-frontier extraction and scalarised
  best-point selection over cycles / energy / resource proxies;
* :mod:`repro.dse.search` — exhaustive, random and greedy hill-climb
  strategies sharing the same runner and cache;
* :mod:`repro.dse.distributed` — sweep sharding across a fleet of
  ``fpfa-map serve`` daemons with work stealing and a local fallback
  (records bit-identical to a local sweep).

Quickstart::

    from repro.dse import DesignSpace, run_sweep, pareto_front

    space = DesignSpace({"n_pps": [1, 2, 3, 5, 8],
                         "n_buses": [4, 10],
                         "library": ["two-level", "mac"]})
    result = run_sweep(source, space.grid(), workers=4,
                       cache="~/.cache/fpfa-dse")
    for record in pareto_front(result.ok_records()):
        print(record["config"], record["metrics"]["cycles"])
"""

from repro.dse.cache import ResultCache
from repro.dse.distributed import (
    DistributedSweepStats,
    parse_remotes,
    run_distributed_sweep,
)
from repro.dse.pareto import (
    best_record,
    dominates,
    frontier_table,
    objective_value,
    pareto_front,
)
from repro.dse.runner import (
    SweepResult,
    SweepStats,
    evaluate_point,
    run_sweep,
)
from repro.dse.search import (
    SearchResult,
    exhaustive_search,
    hill_climb,
    random_search,
)
from repro.dse.space import DesignPoint, DesignSpace

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "DistributedSweepStats",
    "ResultCache",
    "SearchResult",
    "SweepResult",
    "SweepStats",
    "best_record",
    "dominates",
    "evaluate_point",
    "exhaustive_search",
    "frontier_table",
    "hill_climb",
    "objective_value",
    "pareto_front",
    "parse_remotes",
    "random_search",
    "run_distributed_sweep",
    "run_sweep",
]
