"""Content-addressed on-disk memoisation of design-point results.

The mapping flow is deterministic: the same (source, design point)
pair always yields the same metrics.  That makes every result safe to
memoise by content hash — the cache key is the SHA-256 of a canonical
JSON envelope of the program source, the point's canonical identity
and a format version.  Overlapping sweeps (a bus sweep after a full
grid, a hill-climb revisiting a ridge) then skip re-mapping entirely.

Records are JSON dicts stored one-per-file under a two-hex-char
shard directory, written atomically (temp file + ``os.replace``) so a
killed sweep never leaves a truncated record behind.  Corrupt or
unreadable entries degrade to cache misses.

Tiers
-----
The record files are the *truth*; layered over them is an **index
tier**: a sqlite ``manifest.db`` at the store root holding one row
per record (key, size, mtime, ok/verified flags, LRU stamp).  The
manifest makes ``len()``/``stats()``/key listing indexed lookups
instead of directory walks, carries the flags that let
``__contains__``/:meth:`probe` answer without parsing files, and
drives LRU eviction when the store is bounded.

The manifest is strictly *rebuildable state*: a store directory
without one (an old flat cache, a copy rsynced without the db) opens
in place — the manifest is lazily rebuilt from the files on first
use.  A torn, truncated or version-mismatched manifest is deleted and
rebuilt the same way.  Every manifest failure degrades: the cache
falls back to directory walks and keeps serving, it never raises.
:meth:`fsck` reconciles manifest and directory explicitly and removes
corpses (corrupt records, stale ``*.tmp`` files from killed writers).

Bounds
------
``max_entries``/``max_bytes`` bound the store; every admission
evicts least-recently-*accessed* records (the manifest's LRU stamp —
a cross-process logical clock, so two writers sharing a directory
agree on recency) until the store fits.  Eviction requires a live
manifest; with the manifest degraded the store grows unbounded
rather than guessing victims.

Invariants
----------
* **Cache records are bit-identical to fresh ones.**  A record read
  back from disk must be indistinguishable from re-evaluating the
  point: key order is preserved on write (no ``sort_keys``) so warm
  and cold sweeps render identical tables, and the key hashes the
  full program source plus the point's canonical identity, so no two
  distinct evaluations can alias.  The manifest never touches record
  bytes — tiered and flat stores write identical files.
* Only ``ok`` records are memoised (the runner's policy); a failure
  is never served from the cache.
* A store failure is a *miss*, never a crash: corrupt entries,
  full-disk writes (``put`` returns ``False``) and manifest
  corruption all degrade and are counted
  (``put_errors``/``manifest_errors``/``manifest_rebuilds``).
* ``CACHE_VERSION`` is part of every key: bumping it invalidates the
  whole store without touching files.
* A pure single-tile :class:`DesignPoint` serialises without an
  ``array`` key, so keys minted before the multi-tile axis existed
  remain valid.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import sqlite3
import tempfile
import threading
import time
from typing import Iterator, Mapping

from repro.dse.space import DesignPoint

#: Bump when the record layout changes: stale entries become misses.
CACHE_VERSION = 1

#: The index tier's file name, at the store root (next to the two-hex
#: shard directories, whose names can never collide with it).
MANIFEST_NAME = "manifest.db"

#: Bump when the manifest schema changes: an old manifest is deleted
#: and rebuilt from the record files (which never change format here).
MANIFEST_VERSION = 1

#: Seconds a writer waits on a locked manifest before degrading.
SQLITE_TIMEOUT = 30.0

#: Sentinel distinguishing "manifest unavailable" from "no row".
_UNAVAILABLE = object()


def cache_key(source: str, point: DesignPoint) -> str:
    """Stable content hash of one (source, design point) pair."""
    envelope = json.dumps(
        {"version": CACHE_VERSION, "source": source,
         "point": point.to_dict()},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(envelope.encode("utf-8")).hexdigest()


class _Manifest:
    """The sqlite index over one sharded record directory.

    Methods raise ``sqlite3.Error``/``OSError`` freely — the owning
    :class:`ResultCache` wraps every call in its degrade-don't-crash
    guard (:meth:`ResultCache._manifest_op`), which recovers by
    rebuilding from the record files.  The connection is shared
    across threads (the service daemon reads stats from executor
    threads) under one lock; cross-process writers coordinate through
    sqlite's own locking (WAL + busy timeout).

    ``last_access`` is a *logical* clock: every touch stamps
    ``MAX(last_access)+1`` inside the writing transaction, so recency
    is strictly ordered even across processes and never depends on
    wall-clock resolution — the LRU victim is exact, and the most
    recently accessed key can never be chosen.
    """

    def __init__(self, root: pathlib.Path):
        self.path = root / MANIFEST_NAME
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path),
                                     timeout=SQLITE_TIMEOUT,
                                     check_same_thread=False)
        with self._lock, self._conn:
            # WAL keeps concurrent readers off the writer's lock;
            # NORMAL sync is safe with WAL and skips the per-commit
            # fsync (the manifest is rebuildable state — the records
            # themselves are still written via atomic rename).
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(name TEXT PRIMARY KEY, value TEXT NOT NULL)")
            row = self._conn.execute(
                "SELECT value FROM meta WHERE name='version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO meta VALUES "
                    "('version', ?)", (str(MANIFEST_VERSION),))
            elif row[0] != str(MANIFEST_VERSION):
                raise sqlite3.DataError(
                    f"manifest version {row[0]!r}, expected "
                    f"{MANIFEST_VERSION}")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                " key TEXT PRIMARY KEY,"
                " size INTEGER NOT NULL,"
                " mtime REAL NOT NULL,"
                " ok INTEGER NOT NULL,"
                " verified INTEGER NOT NULL,"
                " last_access INTEGER NOT NULL)")
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS entries_lru "
                "ON entries(last_access)")

    #: Fresh-stamp subquery: strictly greater than every live stamp.
    _NEXT = "(SELECT COALESCE(MAX(last_access),0)+1 FROM entries)"

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- queries ------------------------------------------------------

    def count(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM entries").fetchone()[0]

    def totals(self) -> tuple[int, int]:
        """(entry count, byte total) in one indexed aggregate."""
        with self._lock:
            return tuple(self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(size),0) "
                "FROM entries").fetchone())

    def entry(self, key: str) -> tuple[int, bool, bool] | None:
        """(size, ok, verified) for *key*, or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT size, ok, verified FROM entries "
                "WHERE key=?", (key,)).fetchone()
        if row is None:
            return None
        return row[0], bool(row[1]), bool(row[2])

    def keys(self) -> list[str]:
        with self._lock:
            return [row[0] for row in self._conn.execute(
                "SELECT key FROM entries ORDER BY key")]

    def lru_victim(self, exclude: str | None = None
                   ) -> tuple[str, int] | None:
        """(key, size) of the least recently accessed entry."""
        query = ("SELECT key, size FROM entries "
                 "{} ORDER BY last_access ASC, key ASC LIMIT 1")
        with self._lock:
            if exclude is None:
                row = self._conn.execute(query.format("")).fetchone()
            else:
                row = self._conn.execute(
                    query.format("WHERE key != ?"),
                    (exclude,)).fetchone()
        return None if row is None else (row[0], row[1])

    # -- mutation -----------------------------------------------------

    def touch(self, key: str) -> bool:
        """Stamp *key* most-recently-accessed; False if unknown."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                f"UPDATE entries SET last_access={self._NEXT} "
                f"WHERE key=?", (key,))
            return cursor.rowcount > 0

    def record(self, key: str, size: int, mtime: float, ok: bool,
               verified: bool) -> None:
        """Upsert one entry with a fresh recency stamp."""
        with self._lock, self._conn:
            self._conn.execute(
                f"INSERT INTO entries VALUES (?,?,?,?,?,{self._NEXT})"
                f" ON CONFLICT(key) DO UPDATE SET"
                f" size=excluded.size, mtime=excluded.mtime,"
                f" ok=excluded.ok, verified=excluded.verified,"
                f" last_access=excluded.last_access",
                (key, size, mtime, int(ok), int(verified)))

    def remove(self, key: str) -> None:
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM entries WHERE key=?",
                               (key,))

    def clear(self) -> None:
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM entries")

    # -- reconstruction -----------------------------------------------

    def rebuild(self, root: pathlib.Path) -> int:
        """Reindex from the record files; returns rows indexed.

        Unparseable files are skipped (they stay misses; ``fsck``
        removes them) — a rebuild must succeed on any directory a
        crashed writer could leave behind.  Access order restarts in
        name order: LRU history is advisory state and not worth a
        sidecar to preserve.
        """
        rows = []
        for path in sorted(root.glob("??/*.json")):
            try:
                raw = path.read_bytes()
                mtime = path.stat().st_mtime
                record = json.loads(raw.decode("utf-8"))
            except (OSError, ValueError):
                continue
            if not isinstance(record, dict):
                continue
            rows.append((path.stem, len(raw), mtime,
                         int(bool(record.get("ok"))),
                         int(bool(record.get("verified"))),
                         len(rows) + 1))
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM entries")
            self._conn.executemany(
                "INSERT OR REPLACE INTO entries VALUES (?,?,?,?,?,?)",
                rows)
        return len(rows)

    def reconcile(self, valid: Mapping[str, tuple[int, float, bool,
                                                  bool]]
                  ) -> tuple[int, int]:
        """Converge on *valid* (key -> (size, mtime, ok, verified))
        preserving recency stamps of surviving rows; returns
        (rows added, rows dropped)."""
        with self._lock, self._conn:
            existing = {row[0]: row[1] for row in self._conn.execute(
                "SELECT key, size FROM entries")}
            dropped = [key for key in existing if key not in valid]
            self._conn.executemany(
                "DELETE FROM entries WHERE key=?",
                [(key,) for key in dropped])
            added = 0
            for key, (size, mtime, ok, verified) in valid.items():
                if key in existing:
                    self._conn.execute(
                        "UPDATE entries SET size=?, mtime=?, ok=?, "
                        "verified=? WHERE key=?",
                        (size, mtime, int(ok), int(verified), key))
                else:
                    added += 1
                    self._conn.execute(
                        f"INSERT INTO entries VALUES "
                        f"(?,?,?,?,?,{self._NEXT})",
                        (key, size, mtime, int(ok), int(verified)))
        return added, len(dropped)


class ResultCache:
    """A directory of memoised sweep records, keyed by content hash,
    with a sqlite index tier and optional LRU bounds."""

    def __init__(self, root, *, max_entries: int | None = None,
                 max_bytes: int | None = None):
        self.root = pathlib.Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0          #: records removed by the bounds
        self.put_errors = 0         #: writes degraded to no-ops
        self.manifest_errors = 0    #: manifest ops that failed
        self.manifest_rebuilds = 0  #: full reindexes from the files
        #: Entry count, maintained incrementally (put/discard/clear)
        #: after one lazy initial read — ``len``/``stats`` must not
        #: walk the whole store per call (the daemon serves them on
        #: every ``/stats`` request).  The count tracks *this
        #: instance's* view; a foreign process adding entries behind
        #: our back is only picked up after ``invalidate_count``.
        self._entries: int | None = None
        #: Lazily opened index tier; ``True`` once it is known
        #: unusable for this instance (every op then degrades to the
        #: flat-directory behaviour).
        self._manifest: _Manifest | None = None
        self._manifest_dead = False

    # -- the index tier (degrade-don't-crash guard) -------------------

    def _open_manifest(self) -> _Manifest:
        """Open (creating if needed) the manifest; lazily rebuild the
        index when it is empty but the directory is not — the
        open-an-old-flat-store-in-place path."""
        manifest = _Manifest(self.root)
        # Pure existence probe — scan order cannot matter, and
        # sorting would materialise the whole directory.
        if manifest.count() == 0 and next(
                self.root.glob("??/*.json"),  # fpfa-lint: disable=FPL001
                None) is not None:
            if manifest.rebuild(self.root):
                self.manifest_rebuilds += 1
        return manifest

    def _recover_manifest(self) -> None:
        """Last resort for a torn/mismatched manifest: delete the
        database files and reindex from the records (the truth)."""
        if self._manifest is not None:
            try:
                self._manifest.close()
            except sqlite3.Error:
                pass
            self._manifest = None
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(self.root / f"{MANIFEST_NAME}{suffix}")
            except OSError:
                pass
        manifest = _Manifest(self.root)
        if manifest.rebuild(self.root):
            pass
        self.manifest_rebuilds += 1
        self._manifest = manifest

    def _manifest_op(self, action, default=_UNAVAILABLE):
        """Run ``action(manifest)``; on any failure, recover once,
        then degrade to *default* and stop using the manifest.  The
        directory of records stays authoritative throughout — a dead
        manifest costs indexed lookups and eviction, never data."""
        if self._manifest_dead:
            return default
        try:
            if self._manifest is None:
                self._manifest = self._open_manifest()
            return action(self._manifest)
        except (sqlite3.Error, OSError, ValueError):
            self.manifest_errors += 1
            try:
                self._recover_manifest()
                return action(self._manifest)
            except (sqlite3.Error, OSError, ValueError):
                self._manifest_dead = True
                return default

    @property
    def manifest_active(self) -> bool:
        """Whether the index tier is serving this instance."""
        return not self._manifest_dead

    # -- addressing ---------------------------------------------------

    def key(self, source: str, point: DesignPoint) -> str:
        return cache_key(source, point)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # -- access -------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The memoised record for *key*, or None (counts hit/miss).

        Reads the record *file* — the truth — so a record a foreign
        flat writer added behind the manifest's back is still served
        (and healed into the index).  A corrupt or truncated entry (a
        crashed foreign process, a full disk, manual editing) is
        *deleted*, not just skipped: the store is shared by every
        sweep and service worker, and a bad file must not be
        re-parsed — or re-reported — on every later lookup.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                raw = handle.read()
            record = json.loads(raw)
        except FileNotFoundError:
            # Heal a row whose file vanished (a foreign eviction or
            # manual deletion); harmless when no row exists.
            self._manifest_op(lambda m: m.remove(key), None)
            self.misses += 1
            return None
        except (OSError, ValueError):
            self._discard(path, key)
            self.misses += 1
            return None
        if not isinstance(record, dict):
            self._discard(path, key)
            self.misses += 1
            return None
        self.hits += 1

        def note_access(manifest: _Manifest) -> None:
            if not manifest.touch(key):
                # Unindexed but valid: a flat writer put it here.
                manifest.record(key, len(raw.encode("utf-8")),
                                time.time(), bool(record.get("ok")),  # fpfa-lint: wall-clock
                                bool(record.get("verified")))
        self._manifest_op(note_access, None)
        return record

    def probe(self, key: str, *, want_verified: bool = False) -> bool:
        """Whether *key* holds a servable record — without counting a
        hit/miss and (with a live manifest) without touching the file.

        Unlike a bare ``path.exists()``, a poisoned entry (garbage
        bytes under a valid key path) is **not** reported present:
        the manifest only indexes records that parsed, and the
        fallback path parses.  With *want_verified*, an ``ok`` record
        that was never verified is not servable (the
        :meth:`~repro.service.store.ArtifactStore.lookup` rule).
        """
        entry = self._manifest_op(lambda m: m.entry(key))
        if entry is not _UNAVAILABLE and entry is not None:
            __, ok, verified = entry
            return not (want_verified and ok and not verified)
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return False
        except (OSError, ValueError):
            self._discard(path, key)
            return False
        if not isinstance(record, dict):
            self._discard(path, key)
            return False
        if entry is not _UNAVAILABLE:
            # Valid file the manifest missed: heal the index.
            self._manifest_op(
                lambda m: m.record(
                    key, path.stat().st_size, time.time(),  # fpfa-lint: wall-clock
                    bool(record.get("ok")),
                    bool(record.get("verified"))), None)
        return not (want_verified and record.get("ok")
                    and not record.get("verified"))

    def _discard(self, path: pathlib.Path,
                 key: str | None = None) -> None:
        """Best-effort removal of a poisoned entry; a concurrent
        reader may have discarded it first, which is fine."""
        try:
            path.unlink()
        except OSError:
            return
        if key is not None:
            self._manifest_op(lambda m: m.remove(key), None)
        if self._entries is not None and self._entries > 0:
            self._entries -= 1

    def put(self, key: str, record: Mapping) -> bool:
        """Atomically persist *record* under *key*; returns whether
        it was written.

        A failed write (full disk, permissions, a shard directory
        racing an eviction) is a degraded no-op — counted in
        ``put_errors`` — never an exception: a store failure must
        cost a future cache miss, not the sweep or daemon writing
        through it.
        """
        path = self.path_for(key)
        # Open the index before the file lands: otherwise the first
        # put into a fresh store would trip the empty-manifest /
        # non-empty-directory rebuild heuristic on its own write.
        if self._manifest is None and not self._manifest_dead:
            self._manifest_op(lambda manifest: None, None)
        # Key order is preserved (no sort_keys): a cached record must
        # round-trip exactly as the runner built it, column order and
        # all, so warm and cold sweeps render identical tables.
        payload = json.dumps(dict(record))
        fresh = False
        for attempt in (1, 2):
            temp_name = None
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                descriptor, temp_name = tempfile.mkstemp(
                    dir=path.parent, suffix=".tmp")
                with os.fdopen(descriptor, "w",
                               encoding="utf-8") as handle:
                    handle.write(payload)
                fresh = not path.exists()
                os.replace(temp_name, path)
                break
            except OSError:
                if temp_name is not None:
                    try:
                        os.unlink(temp_name)
                    except OSError:
                        pass
                # One retry covers a shard directory removed between
                # mkdir and mkstemp by a concurrent evict/clear.
                if attempt == 2:
                    self.put_errors += 1
                    return False
        if fresh and self._entries is not None:
            self._entries += 1
        size = len(payload.encode("utf-8"))
        self._manifest_op(
            lambda m: m.record(key, size, time.time(),  # fpfa-lint: wall-clock
                               bool(record.get("ok")),
                               bool(record.get("verified"))), None)
        self._enforce_bounds(protect=key)
        return True

    def downgrade_hit(self) -> None:
        """Reclassify the most recent hit as a miss — used when the
        caller rejects a returned record (e.g. it lacks verification
        this sweep promises), so hit_rate reflects records actually
        served."""
        if self.hits > 0:
            self.hits -= 1
            self.misses += 1

    # -- bounds + eviction --------------------------------------------

    def set_bounds(self, max_entries: int | None = None,
                   max_bytes: int | None = None) -> int:
        """Install (or change) the store bounds and enforce them now;
        returns how many records were evicted doing so."""
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        return self._enforce_bounds()

    def _within_bounds(self, count: int, total_bytes: int) -> bool:
        return (self.max_entries is None
                or count <= self.max_entries) and \
               (self.max_bytes is None
                or total_bytes <= self.max_bytes)

    def _enforce_bounds(self, protect: str | None = None) -> int:
        """Evict least-recently-accessed records until the store fits
        its bounds; returns the number evicted.  *protect* (the key
        just written) is never chosen — even a pathological clock
        cannot evict the record the caller is about to read back.
        Requires a live manifest: without one the store degrades to
        unbounded growth rather than guessing victims.
        """
        if self.max_entries is None and self.max_bytes is None:
            return 0
        evicted = 0
        previous_count = None
        while True:
            totals = self._manifest_op(lambda m: m.totals())
            if totals is _UNAVAILABLE:
                break
            count, total_bytes = totals
            if self._within_bounds(count, total_bytes):
                break
            if previous_count is not None and count >= previous_count:
                break  # nothing shrank: stop rather than spin
            previous_count = count
            victim = self._manifest_op(
                lambda m: m.lru_victim(exclude=protect))
            if victim is _UNAVAILABLE or victim is None:
                break
            victim_key, __ = victim
            victim_path = self.path_for(victim_key)
            try:
                victim_path.unlink()
            except OSError:
                pass  # a concurrent evict/clear got there first
            self._manifest_op(lambda m: m.remove(victim_key), None)
            try:
                victim_path.parent.rmdir()  # drop an emptied shard
            except OSError:
                pass
            self.evictions += 1
            evicted += 1
            if self._entries is not None and self._entries > 0:
                self._entries -= 1
        return evicted

    def gc(self) -> dict:
        """Enforce the configured bounds now; returns a report."""
        evicted = self._enforce_bounds()
        return {"evicted": evicted, **self.stats()}

    # -- reconciliation -----------------------------------------------

    def fsck(self) -> dict:
        """Reconcile manifest and directory; returns a repair report.

        Walks the record files (the truth): corrupt records and stale
        ``*.tmp`` corpses from killed writers are removed, valid
        records missing from the manifest are indexed, manifest rows
        whose file vanished are dropped (surviving rows keep their
        recency), emptied shard directories are pruned, and the
        incremental entry count is re-anchored.  A dead manifest is
        force-recovered first — ``fsck`` is the repair tool.
        """
        report = {"files": 0, "corrupt_removed": 0, "tmp_removed": 0,
                  "rows_added": 0, "rows_dropped": 0,
                  "dirs_removed": 0, "manifest": "ok"}
        self._manifest_dead = False  # fsck always retries the index
        valid: dict[str, tuple[int, float, bool, bool]] = {}
        for path in sorted(self.root.glob("??/*")):
            if path.suffix != ".json":
                try:
                    path.unlink()
                    report["tmp_removed"] += 1
                except OSError:
                    pass
                continue
            report["files"] += 1
            try:
                raw = path.read_bytes()
                mtime = path.stat().st_mtime
                record = json.loads(raw.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except (OSError, ValueError):
                try:
                    path.unlink()
                except OSError:
                    pass
                report["corrupt_removed"] += 1
                continue
            valid[path.stem] = (len(raw), mtime,
                                bool(record.get("ok")),
                                bool(record.get("verified")))
        outcome = self._manifest_op(lambda m: m.reconcile(valid))
        if outcome is _UNAVAILABLE:
            report["manifest"] = "unavailable"
        else:
            report["rows_added"], report["rows_dropped"] = outcome
            if self.manifest_rebuilds:
                report["manifest"] = "rebuilt"
        for shard in sorted(self.root.glob("??")):
            if shard.is_dir():
                try:
                    shard.rmdir()
                    report["dirs_removed"] += 1
                except OSError:
                    pass
        self._entries = len(valid)
        return report

    # -- bookkeeping --------------------------------------------------

    def __len__(self) -> int:
        """Entry count: one lazy manifest read (or directory scan
        when the index is unavailable), then O(1) updates."""
        if self._entries is None:
            count = self._manifest_op(lambda m: m.count())
            if count is _UNAVAILABLE:
                # Counting — order-free by construction.
                # fpfa-lint: disable=FPL001
                scan = self.root.glob("??/*.json")
                count = sum(1 for _ in scan)
            self._entries = count
        return self._entries

    def invalidate_count(self) -> None:
        """Forget the incremental entry count; the next ``len()``
        re-reads the manifest.  For owners that know the directory
        was written behind this instance's back — the service daemon
        calls it after explore/chunk jobs, whose workers write
        through their own :class:`ResultCache` handle on the same
        directory."""
        self._entries = None

    def __contains__(self, key: str) -> bool:
        """Manifest-routed presence: a poisoned entry (garbage bytes
        at the key's path) is not present — unlike the bare
        ``path.exists()`` this used to be."""
        return self.probe(key)

    def keys(self) -> Iterator[str]:
        """Every stored key — an indexed read, not a directory walk,
        while the manifest is live."""
        listed = self._manifest_op(lambda m: m.keys())
        if listed is not _UNAVAILABLE:
            return iter(listed)
        return (path.stem
                for path in sorted(self.root.glob("??/*.json")))

    def clear(self) -> int:
        """Delete every record; returns how many were removed.

        Also removes the emptied two-hex shard directories (an
        operator pointing ``du``/``ls`` at a cleared store should see
        an empty store) and resets the hit/miss counters — a cleared
        store's ``stats()`` starts from zero, so a ``/stats`` reader
        sees hit_rate describing the store that exists now, not the
        one that was thrown away.
        """
        removed = 0
        for path in sorted(self.root.glob("??/*.json")):
            path.unlink()
            removed += 1
        for shard in sorted(self.root.glob("??")):
            if not shard.is_dir():
                continue
            for stale in sorted(shard.glob("*.tmp")):
                try:
                    stale.unlink()
                except OSError:
                    pass
            try:
                shard.rmdir()
            except OSError:
                pass
        self._manifest_op(lambda m: m.clear(), None)
        self._entries = 0
        self.hits = 0
        self.misses = 0
        return removed

    def stats(self) -> dict:
        total = self.hits + self.misses
        totals = self._manifest_op(lambda m: m.totals())
        stored_bytes = None if totals is _UNAVAILABLE else totals[1]
        return {
            "entries": len(self),
            "bytes": stored_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 3) if total else 0.0,
            "evictions": self.evictions,
            "put_errors": self.put_errors,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "manifest_active": self.manifest_active,
            "manifest_errors": self.manifest_errors,
            "manifest_rebuilds": self.manifest_rebuilds,
        }
