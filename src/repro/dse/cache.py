"""Content-addressed on-disk memoisation of design-point results.

The mapping flow is deterministic: the same (source, design point)
pair always yields the same metrics.  That makes every result safe to
memoise by content hash — the cache key is the SHA-256 of a canonical
JSON envelope of the program source, the point's canonical identity
and a format version.  Overlapping sweeps (a bus sweep after a full
grid, a hill-climb revisiting a ridge) then skip re-mapping entirely.

Records are JSON dicts stored one-per-file under a two-hex-char
shard directory, written atomically (temp file + ``os.replace``) so a
killed sweep never leaves a truncated record behind.  Corrupt or
unreadable entries degrade to cache misses.

Invariants
----------
* **Cache records are bit-identical to fresh ones.**  A record read
  back from disk must be indistinguishable from re-evaluating the
  point: key order is preserved on write (no ``sort_keys``) so warm
  and cold sweeps render identical tables, and the key hashes the
  full program source plus the point's canonical identity, so no two
  distinct evaluations can alias.
* Only ``ok`` records are memoised (the runner's policy); a failure
  is never served from the cache.
* ``CACHE_VERSION`` is part of every key: bumping it invalidates the
  whole store without touching files.
* A pure single-tile :class:`DesignPoint` serialises without an
  ``array`` key, so keys minted before the multi-tile axis existed
  remain valid.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Mapping

from repro.dse.space import DesignPoint

#: Bump when the record layout changes: stale entries become misses.
CACHE_VERSION = 1


def cache_key(source: str, point: DesignPoint) -> str:
    """Stable content hash of one (source, design point) pair."""
    envelope = json.dumps(
        {"version": CACHE_VERSION, "source": source,
         "point": point.to_dict()},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(envelope.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of memoised sweep records, keyed by content hash."""

    def __init__(self, root):
        self.root = pathlib.Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Entry count, maintained incrementally (put/discard/clear)
        #: after one lazy initial scan — ``len``/``stats`` must not
        #: walk the whole store per call (the daemon serves them on
        #: every ``/stats`` request).  The count tracks *this
        #: instance's* view; a foreign process adding entries behind
        #: our back is only picked up by a fresh instance.
        self._entries: int | None = None

    # -- addressing ---------------------------------------------------

    def key(self, source: str, point: DesignPoint) -> str:
        return cache_key(source, point)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # -- access -------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The memoised record for *key*, or None (counts hit/miss).

        A corrupt or truncated entry (a writer crashed between
        creating and atomically replacing the file is impossible, but
        a foreign process, a full disk or manual editing can still
        leave garbage behind) is *deleted*, not just skipped: the
        store is shared by every sweep and service worker, and a bad
        file must not be re-parsed — or re-reported — on every later
        lookup.
        """
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self._discard(path)
            self.misses += 1
            return None
        if not isinstance(record, dict):
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return record

    def _discard(self, path: pathlib.Path) -> None:
        """Best-effort removal of a poisoned entry; a concurrent
        reader may have discarded it first, which is fine."""
        try:
            path.unlink()
        except OSError:
            return
        if self._entries is not None and self._entries > 0:
            self._entries -= 1

    def put(self, key: str, record: Mapping) -> None:
        """Atomically persist *record* under *key*."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Key order is preserved (no sort_keys): a cached record must
        # round-trip exactly as the runner built it, column order and
        # all, so warm and cold sweeps render identical tables.
        payload = json.dumps(dict(record))
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(payload)
            fresh = not path.exists()
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        if fresh and self._entries is not None:
            self._entries += 1

    def downgrade_hit(self) -> None:
        """Reclassify the most recent hit as a miss — used when the
        caller rejects a returned record (e.g. it lacks verification
        this sweep promises), so hit_rate reflects records actually
        served."""
        if self.hits > 0:
            self.hits -= 1
            self.misses += 1

    # -- bookkeeping --------------------------------------------------

    def __len__(self) -> int:
        """Entry count: one lazy directory scan, then O(1) updates."""
        if self._entries is None:
            self._entries = sum(
                1 for _ in self.root.glob("??/*.json"))
        return self._entries

    def invalidate_count(self) -> None:
        """Forget the incremental entry count; the next ``len()``
        re-scans.  For owners that know the directory was written
        behind this instance's back — the service daemon calls it
        after explore/chunk jobs, whose workers write through their
        own :class:`ResultCache` handle on the same directory."""
        self._entries = None

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for path in self.root.glob("??/*.json"):
            path.unlink()
            removed += 1
        self._entries = 0
        return removed

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 3) if total else 0.0,
        }
