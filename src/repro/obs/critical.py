"""Critical-path analysis: where did a sweep's wall time go?

Input is a stitched trace — the entry list a flight recorder wrote
(:func:`repro.obs.export.load_trace`), spanning the coordinator,
the daemons it leased chunks to, and their workers.  Output is an
attribution of the sweep's wall-clock window across named phases:

    queue wait, frontend compile, point evaluation,
    transfers/peering, retries/backoff, steal/probation stalls,
    plus the residual buckets (worker overhead, lease round-trip,
    coordinator overhead) that keep the attribution exhaustive.

The model is priority-layered interval coverage rather than a naive
sum of span durations: spans nest (``dse.point`` contains
``pipeline.*``) and run concurrently across lease lanes, so summing
durations double-counts wildly.  Instead, every instant inside the
root ``dse.sweep`` span's window is attributed to exactly one phase
— the highest-priority phase with a span covering that instant.
Fine-grained phases (a point evaluating, a frontend compiling) win
over their enclosing coarse spans (the worker running it, the lease
carrying it, the sweep containing everything), so the coarse buckets
collect only their *exclusive* time: serialization and transport for
leases, dedup/merge/scheduling for the coordinator.  Because the
root span covers its own window, the attribution is exhaustive by
construction — ``unattributed`` stays at 0 unless the log has no
root sweep span at all (then the envelope of whatever spans exist is
used, and uncovered gaps are reported honestly).

Clock caveat: durations are monotonic measurements, but *placement*
on the shared timeline uses each process's wall clock (``at`` is the
span's wall finish; starts are reconstructed as ``at - duration``).
Processes of one sweep share a host, so skew is microseconds — but
the wall stamps remain presentation/attribution aids, never inputs
to the mapping flow.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

__all__ = [
    "PHASES",
    "critical_path",
    "render_critical",
]

#: Attribution phases, highest priority first.  Each is
#: ``(phase name, span-name predicate)``; at any instant the first
#: phase with an active span claims the time.
PHASES: list[tuple[str, Callable[[str], bool]]] = [
    ("frontend compile",
     lambda n: n in ("pipeline.parse", "pipeline.transforms")),
    ("point evaluation", lambda n: n == "dse.point"),
    ("transfers/peering",
     lambda n: n.startswith("distributed.peer")
     or n.startswith("store.")),
    ("retries/backoff", lambda n: n == "retry.backoff"),
    ("steal/probation stalls",
     lambda n: n in ("distributed.probe", "distributed.probation")),
    ("queue wait", lambda n: n == "queue.wait"),
    ("worker overhead",
     lambda n: n.startswith("worker.") or n == "dse.chunk"
     or n.startswith("pipeline.")),
    ("lease round-trip", lambda n: n == "distributed.lease"),
    ("coordinator overhead", lambda n: n == "dse.sweep"),
]

#: Span names that mark the root of a sweep's wall window.
ROOT_SPAN = "dse.sweep"


def _spans(entries: Iterable[dict]) -> list[dict]:
    picked = []
    for entry in entries:
        if not isinstance(entry, dict) or entry.get("kind") != "span":
            continue
        if not isinstance(entry.get("at"), (int, float)):
            continue
        if not isinstance(entry.get("duration"), (int, float)):
            continue
        picked.append(entry)
    return picked


def _pick_root(spans: list[dict],
               trace_id: str | None) -> dict | None:
    roots = [s for s in spans if s.get("name") == ROOT_SPAN]
    if trace_id is not None:
        roots = [s for s in roots if s.get("trace") == trace_id]
    if not roots:
        return None
    return max(roots, key=lambda s: s["duration"])


def critical_path(entries: Iterable[dict], *,
                  trace_id: str | None = None) -> dict[str, Any]:
    """Attribute a recorded sweep's wall time across phases.

    Picks the longest ``dse.sweep`` span (optionally pinned to
    *trace_id*) as the window, keeps the spans of its trace, and
    returns::

        {"total": seconds, "trace": trace-id-or-None,
         "phases": {phase: seconds, ...},   # only non-zero phases
         "attributed": fraction-in-[0,1],
         "unattributed": seconds, "spans": count}

    ``sum(phases) + unattributed == total`` (up to float dust).
    """
    spans = _spans(entries)
    root = _pick_root(spans, trace_id)
    if root is not None:
        trace_id = root.get("trace")
        window = (root["at"] - root["duration"], root["at"])
    elif spans:
        if trace_id is not None:
            spans = [s for s in spans if s.get("trace") == trace_id]
        if not spans:
            return {"total": 0.0, "trace": trace_id, "phases": {},
                    "attributed": 0.0, "unattributed": 0.0,
                    "spans": 0}
        window = (min(s["at"] - s["duration"] for s in spans),
                  max(s["at"] for s in spans))
    else:
        return {"total": 0.0, "trace": trace_id, "phases": {},
                "attributed": 0.0, "unattributed": 0.0, "spans": 0}
    if trace_id is not None:
        spans = [s for s in spans if s.get("trace") == trace_id]
    start, end = window
    total = max(0.0, end - start)
    if total == 0.0:
        return {"total": 0.0, "trace": trace_id, "phases": {},
                "attributed": 0.0, "unattributed": 0.0,
                "spans": len(spans)}

    # Boundary sweep: +1/-1 per phase at each clipped span edge, one
    # pass over the sorted edges, each elementary segment claimed by
    # the highest-priority active phase.
    edges: list[tuple[float, int, int]] = []
    for span_entry in spans:
        name = str(span_entry.get("name", ""))
        for index, (_, matches) in enumerate(PHASES):
            if matches(name):
                lo = max(start, span_entry["at"]
                         - span_entry["duration"])
                hi = min(end, span_entry["at"])
                if hi > lo:
                    edges.append((lo, +1, index))
                    edges.append((hi, -1, index))
                break
    edges.sort(key=lambda edge: edge[0])
    active = [0] * len(PHASES)
    phases = {name: 0.0 for name, _ in PHASES}
    unattributed = 0.0
    cursor = start
    position = 0
    while position < len(edges):
        when = edges[position][0]
        if when > cursor:
            claimed = next((i for i, n in enumerate(active) if n),
                           None)
            if claimed is None:
                unattributed += when - cursor
            else:
                phases[PHASES[claimed][0]] += when - cursor
            cursor = when
        while position < len(edges) and edges[position][0] == when:
            _, delta, index = edges[position]
            active[index] += delta
            position += 1
    if end > cursor:
        unattributed += end - cursor
    phases = {name: seconds for name, seconds in phases.items()
              if seconds > 0.0}
    attributed = sum(phases.values())
    return {
        "total": total,
        "trace": trace_id,
        "phases": phases,
        "attributed": attributed / total if total else 0.0,
        "unattributed": unattributed,
        "spans": len(spans),
    }


def render_critical(report: dict[str, Any]) -> str:
    """The attribution as an aligned text table."""
    lines = []
    trace_id = report.get("trace")
    suffix = f" (trace {trace_id})" if trace_id else ""
    lines.append(f"critical path over {report['total']:.3f}s wall"
                 f"{suffix}: {report['spans']} spans")
    total = report["total"] or 1.0
    order = {name: index for index, (name, _) in enumerate(PHASES)}
    for name, seconds in sorted(
            report["phases"].items(),
            key=lambda item: (-item[1], order.get(item[0], 99))):
        lines.append(f"  {seconds:>9.3f}s  {100 * seconds / total:5.1f}%"
                     f"  {name}")
    if report["unattributed"] > 0:
        share = 100 * report["unattributed"] / total
        lines.append(f"  {report['unattributed']:>9.3f}s  "
                     f"{share:5.1f}%  (unattributed)")
    lines.append(f"attributed: {100 * report['attributed']:.1f}% "
                 "of wall time")
    return "\n".join(lines)
