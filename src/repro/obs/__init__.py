"""Fleet observability: tracing spans, metrics, and the dashboard.

The PR 1–5 arc turned the paper's single-shot mapping flow into a
daemon fleet running sharded sweeps; :mod:`repro.obs` is the layer
that makes that fleet watchable.  Three parts, each consumable on its
own:

* :mod:`repro.obs.trace` — a lightweight in-process span/event
  recorder.  Hot layers (the pipeline stages, the job queue, the
  worker executors, the sweep runner, the distributed coordinator)
  are instrumented against the module-level default tracer, which is
  **disabled by default and zero-cost while disabled** — a disabled
  ``span()`` returns a shared no-op context manager and records
  nothing.
* :mod:`repro.obs.metrics` — a Prometheus-style metrics registry
  (counters, gauges, fixed-bucket histograms) with a text-format
  renderer and a strict parser.  The daemon exposes a registry as
  ``GET /metrics``; the parser is what the tests and the CI smoke
  job validate the endpoint with.
* :mod:`repro.obs.dashboard` — ``fpfa-map dashboard``: a stdlib-only
  HTTP + SSE server that polls ``/stats`` and ``/metrics`` across a
  daemon fleet, tails job NDJSON event streams, and serves a live
  single-page ops view.

Invariant: **observation never mutates**.  Nothing in this package is
allowed to change a mapped artifact, a record, or a payload — with
tracing enabled or disabled, every surface stays bit-identical
(enforced by the equivalence tests in ``tests/test_obs.py``).

See ``docs/observability.md`` for span names, metric families and a
dashboard walkthrough.
"""

from repro.obs.metrics import MetricsRegistry, parse_prometheus
from repro.obs.trace import Tracer

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "parse_prometheus",
]
