"""Fleet observability: tracing spans, metrics, and the dashboard.

The PR 1–5 arc turned the paper's single-shot mapping flow into a
daemon fleet running sharded sweeps; :mod:`repro.obs` is the layer
that makes that fleet watchable.  Three parts, each consumable on its
own:

* :mod:`repro.obs.trace` — a lightweight in-process span/event
  recorder.  Hot layers (the pipeline stages, the job queue, the
  worker executors, the sweep runner, the distributed coordinator)
  are instrumented against the module-level default tracer, which is
  **disabled by default and zero-cost while disabled** — a disabled
  ``span()`` returns a shared no-op context manager and records
  nothing.
* :mod:`repro.obs.metrics` — a Prometheus-style metrics registry
  (counters, gauges, fixed-bucket histograms) with a text-format
  renderer and a strict parser.  The daemon exposes a registry as
  ``GET /metrics``; the parser is what the tests and the CI smoke
  job validate the endpoint with.
* :mod:`repro.obs.dashboard` — ``fpfa-map dashboard``: a stdlib-only
  HTTP + SSE server that polls ``/stats`` and ``/metrics`` across a
  daemon fleet, tails job NDJSON event streams, and serves a live
  single-page ops view.
* :mod:`repro.obs.export` — the sweep flight recorder: spans carry
  W3C-style trace/span/parent ids, stream to an NDJSON log beside
  the cache, stitch across processes (``fpfa-map trace record``)
  and export as Chrome ``trace_event``/Perfetto JSON.
* :mod:`repro.obs.critical` — critical-path analysis over a
  recorded trace: attributes a sweep's wall time across queue wait,
  frontend compile, point evaluation, transfers/peering,
  retries/backoff and steal/probation stalls
  (``fpfa-map trace critical-path``).

Invariant: **observation never mutates**.  Nothing in this package is
allowed to change a mapped artifact, a record, or a payload — with
tracing enabled or disabled, every surface stays bit-identical
(enforced by the equivalence tests in ``tests/test_obs.py``).

See ``docs/observability.md`` for span names, metric families and a
dashboard walkthrough.
"""

from repro.obs.critical import critical_path, render_critical
from repro.obs.export import FlightRecorder, load_trace, to_chrome_trace
from repro.obs.metrics import MetricsRegistry, parse_prometheus
from repro.obs.trace import Tracer

__all__ = [
    "FlightRecorder",
    "MetricsRegistry",
    "Tracer",
    "critical_path",
    "load_trace",
    "parse_prometheus",
    "render_critical",
    "to_chrome_trace",
]
