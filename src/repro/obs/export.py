"""Sweep flight recorder: NDJSON span log + Chrome/Perfetto export.

The tracer (:mod:`repro.obs.trace`) keeps a bounded in-memory ring —
good for a live ``/trace`` peek, useless for "why did yesterday's
sweep take 48 s".  The :class:`FlightRecorder` closes that gap: it
registers as a tracer sink and streams every finished span/event as
one JSON line to a log that lives **beside the cache** (the same
placement convention as the sweep journal in
:mod:`repro.dse.checkpoint`), so the trace of a sweep travels with
its artifacts.

The log is the interchange format; everything else derives from it:

* :func:`load_trace` — tolerant NDJSON reader (a torn tail from a
  killed recorder loses at most the final line).
* :func:`harvest_daemons` — pull remote daemons' ``GET /trace``
  rings and append the spans belonging to the recorded traces, so
  one log holds the whole stitched tree (coordinator lease spans
  parenting daemon queue/worker spans).
* :func:`to_chrome_trace` — render entries as Chrome
  ``trace_event`` JSON (``{"traceEvents": [...]}``), loadable in
  ``chrome://tracing`` and Perfetto.
* :func:`rollup` — per-name ``{count,total,min,max}`` aggregation
  for ``fpfa-map trace report``.

Invariants inherited from the tracer hold here: recording never
mutates the traced computation (the recorder only copies entries),
durations are monotonic measurements, and the wall-clock ``at``
stamps are presentation-only — the export uses them solely to place
spans on a shared timeline, which is safe because a sweep's
processes share a host clock; the attribution math in
:mod:`repro.obs.critical` never subtracts wall stamps taken in
different processes from each other without that caveat documented.

Multiple processes may append to one log (a forked pool inherits the
recorder): the file is opened append-mode and line-buffered, so each
entry is one atomic-enough ``write(2)``; the tolerant loader drops
the rare interleaved casualty instead of failing the export.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
from contextlib import contextmanager
from typing import Any, Iterable

from repro.obs import trace

__all__ = [
    "TRACE_LOG_NAME",
    "FlightRecorder",
    "trace_log_path_for",
    "recording",
    "load_trace",
    "harvest_daemons",
    "to_chrome_trace",
    "rollup",
]

#: File name of the flight-recorder log, beside the cache/store root
#: (mirrors ``dse/checkpoint.py``'s ``sweep-journal.ndjson``).
TRACE_LOG_NAME = "trace-log.ndjson"


def trace_log_path_for(cache) -> pathlib.Path | None:
    """Where the flight-recorder log for *cache* lives.

    Accepts a cache/store object exposing ``.root``, a path, or
    None.  A cacheless run has nowhere durable to put the log —
    callers then pick an explicit path or skip recording.
    """
    if cache is None:
        return None
    if isinstance(cache, (str, os.PathLike)):
        # Plain paths first: pathlib.Path exposes a `.root`
        # attribute ("/") that would shadow the directory itself.
        root = cache
    else:
        root = getattr(cache, "root", None)
    if root is None:
        return None
    try:
        return pathlib.Path(root) / TRACE_LOG_NAME
    except TypeError:
        return None


class FlightRecorder:
    """Tracer sink streaming finished entries to an NDJSON log.

    Each entry is written as one line, flushed immediately (the
    recorder of a killed process loses at most the line being
    written).  Entries are copied before the ``pid``/``tid`` stamps
    are added — the tracer's own ring entries are never mutated.
    ``seen_traces`` accumulates every trace id the recorder wrote,
    which is what :func:`harvest_daemons` filters remote rings by.
    """

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8",
                          buffering=1)
        self._lock = threading.Lock()
        self.written = 0
        self.seen_traces: set[str] = set()

    def __call__(self, entry: dict[str, Any]) -> None:
        record = dict(entry)
        record.setdefault("pid", os.getpid())
        record.setdefault("tid", threading.get_ident())
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":"), default=str)
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self.written += 1
            trace_id = record.get("trace")
            if isinstance(trace_id, str):
                self.seen_traces.add(trace_id)

    def append(self, entries: Iterable[dict[str, Any]]) -> int:
        """Write pre-built entries (e.g. harvested remote spans)."""
        wrote = 0
        for entry in entries:
            self(entry)
            wrote += 1
        return wrote

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@contextmanager
def recording(path, tracer: trace.Tracer | None = None):
    """Enable tracing and stream to a flight-recorder log at *path*.

    Scoped like :class:`~repro.obs.trace.scoped_tracing`: the
    tracer's prior enabled state is restored and the recorder is
    detached and closed on exit, even when the body raises.
    """
    active = tracer if tracer is not None else trace.TRACER
    recorder = FlightRecorder(path)
    was = active.enabled
    active.enable()
    active.add_sink(recorder)
    try:
        yield recorder
    finally:
        active.remove_sink(recorder)
        if not was:
            active.disable()
        recorder.close()


def load_trace(path) -> list[dict[str, Any]]:
    """Entries from an NDJSON trace log, tolerant of a torn tail.

    A recorder killed mid-write (or two forked writers colliding on
    one line) leaves undecodable lines; those are dropped, never
    raised — the rest of the trace stays usable.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return []
    entries: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def harvest_daemons(remotes, sink, *, trace_ids=None,
                    timeout: float = 10.0) -> int:
    """Pull remote daemons' ``GET /trace`` rings into the log.

    *remotes* are ``host:port`` strings (or anything
    :func:`repro.dse.distributed.parse_remote` accepts); *sink* is a
    :class:`FlightRecorder`, a path, or a callable taking one entry.
    With *trace_ids*, only entries belonging to those traces are
    kept — the usual call passes ``recorder.seen_traces`` so a
    shared daemon's unrelated work stays out of the sweep's log.
    Unreachable daemons are skipped (harvest is a best-effort,
    post-sweep step).  Returns the number of entries written.
    """
    from repro.dse.distributed import parse_remote
    from repro.service.client import ServiceClient, ServiceError

    owned: FlightRecorder | None = None
    if isinstance(sink, (str, os.PathLike)):
        owned = sink = FlightRecorder(sink)
    wanted = set(trace_ids) if trace_ids is not None else None
    harvested = 0
    try:
        for remote in remotes:
            host, port = parse_remote(remote)
            label = f"{host}:{port}"
            client = ServiceClient(host, port, timeout=timeout)
            try:
                payload = client.trace()
            except (ServiceError, OSError, ValueError):
                continue
            daemon_pid = payload.get("pid")
            for entry in payload.get("events", []):
                if not isinstance(entry, dict):
                    continue
                if wanted is not None and \
                        entry.get("trace") not in wanted:
                    continue
                copied = dict(entry)
                copied.setdefault("daemon", label)
                if daemon_pid is not None:
                    copied.setdefault("pid", daemon_pid)
                sink(copied)
                harvested += 1
    finally:
        if owned is not None:
            owned.close()
    return harvested


def _lane_ids(entries) -> dict[Any, int]:
    """Stable small integers for Chrome's numeric pid field, keyed
    by ``(daemon label, recorded pid)`` so every process in the
    stitched trace gets its own swimlane."""
    lanes: dict[Any, int] = {}
    for entry in entries:
        key = (entry.get("daemon"), entry.get("pid"))
        if key not in lanes:
            lanes[key] = len(lanes) + 1
    return lanes


#: Keys the tracer/recorder own; everything else on an entry is a
#: user attribute and lands in the Chrome event's ``args``.
_RESERVED = frozenset({"seq", "kind", "name", "at", "depth",
                       "duration", "trace", "span", "parent",
                       "pid", "tid", "daemon"})


def to_chrome_trace(entries) -> dict[str, Any]:
    """Entries as Chrome ``trace_event`` JSON (Perfetto-loadable).

    Spans become ``ph: "X"`` complete events with microsecond
    ``ts``/``dur`` (``ts`` reconstructed as wall-finish minus the
    monotonic duration); point events become ``ph: "i"`` instants.
    One swimlane (Chrome "process") per recorded process, named by
    its daemon label or pid.
    """
    entries = [e for e in entries if isinstance(e, dict)]
    lanes = _lane_ids(entries)
    trace_events: list[dict[str, Any]] = []
    for key, lane in sorted(lanes.items(), key=lambda kv: kv[1]):
        daemon, pid = key
        label = daemon or (f"pid {pid}" if pid is not None
                           else "unknown")
        trace_events.append({"ph": "M", "name": "process_name",
                             "pid": lane, "tid": 0,
                             "args": {"name": str(label)}})
    for entry in entries:
        at = entry.get("at")
        if not isinstance(at, (int, float)):
            continue
        lane = lanes[(entry.get("daemon"), entry.get("pid"))]
        tid = entry.get("tid")
        tid = tid if isinstance(tid, int) else 0
        args = {k: v for k, v in entry.items()
                if k not in _RESERVED}
        for ident in ("trace", "span", "parent"):
            if entry.get(ident) is not None:
                args[ident] = entry[ident]
        base = {"name": entry.get("name", "?"),
                "cat": str(entry.get("name", "?")).split(".")[0],
                "pid": lane, "tid": tid, "args": args}
        duration = entry.get("duration")
        if entry.get("kind") == "span" and \
                isinstance(duration, (int, float)):
            base.update(ph="X",
                        ts=round((at - duration) * 1e6, 3),
                        dur=round(duration * 1e6, 3))
        else:
            base.update(ph="i", ts=round(at * 1e6, 3), s="t")
        trace_events.append(base)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def rollup(entries) -> dict[str, dict[str, float]]:
    """Per-name ``{count, total, min, max}`` over span entries —
    the same shape as a tracer snapshot's ``spans`` table, computed
    from a log instead of live memory."""
    table: dict[str, dict[str, float]] = {}
    for entry in entries:
        if not isinstance(entry, dict) or entry.get("kind") != "span":
            continue
        duration = entry.get("duration")
        if not isinstance(duration, (int, float)):
            continue
        name = str(entry.get("name", "?"))
        stats = table.get(name)
        if stats is None:
            table[name] = {"count": 1, "total": duration,
                           "min": duration, "max": duration}
        else:
            stats["count"] += 1
            stats["total"] += duration
            stats["min"] = min(stats["min"], duration)
            stats["max"] = max(stats["max"], duration)
    return table
