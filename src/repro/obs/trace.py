"""In-process tracing: nested spans, counters, ring-buffered events.

The tracer is the observation half of the observability layer — the
metrics registry (:mod:`repro.obs.metrics`) is the exposition half.
Hot layers call the **module-level default tracer** through the free
functions below::

    from repro.obs import trace

    with trace.span("pipeline.schedule"):
        ...
    trace.event("distributed.steal", daemon=label, chunk=index)
    trace.count("queue.finished")

Design constraints, in priority order:

1. **Zero cost while disabled.**  Tracing is off by default;
   mapping's hot loops (per-point evaluation inside a sweep, queue
   pops under the service lock) must not pay for instrumentation
   nobody asked for.  A disabled ``span()`` returns one shared no-op
   context manager — no allocation, no clock read, no lock.
   ``event()``/``count()`` are a single attribute check.  Call sites
   that would *build* expensive attributes guard on
   ``trace.enabled()`` first (enforced by the call-site audit in
   ``tests/test_trace.py``).
2. **Observation never mutates.**  Span bodies return whatever the
   traced code returns; the tracer holds its own copies of
   everything it records.  Mapped artifacts stay bit-identical with
   tracing on (see ``tests/test_obs.py``).
3. **Monotonic durations.**  Span timing uses
   :func:`time.perf_counter` pairs; wall-clock timestamps on ring
   events are presentation-only, matching the PR 5 convention in
   ``service/queue.py``.

Aggregation model: per-span-name ``{count, total, min, max}``
rollups plus named counters, both O(distinct names) memory; recent
finished spans and point events land in one bounded ring
(``collections.deque(maxlen=...)``) so a long sweep cannot grow the
tracer without bound.  Nesting depth is tracked per thread so the
ring shows call structure even when the worker pool interleaves
spans from many threads.

Distributed tracing (PR 9): every finished span carries W3C-style
identifiers — a 32-hex ``trace`` id shared by a whole request tree, a
16-hex ``span`` id, and the ``parent`` span id (None for roots).
Parentage follows the per-thread span stack; a remote parent is
grafted in with :func:`attach`, whose context dict
(``{"trace": ..., "span": ...}``) travels the wire inside job
requests (see :mod:`repro.service.protocol`).  Cross-process
collection uses :func:`capture` (gather the spans one job finished on
this thread) and :meth:`Tracer.adopt` (fold entries recorded in a
worker back into a host tracer).  Sinks registered with
:meth:`Tracer.add_sink` observe every finished entry — the flight
recorder in :mod:`repro.obs.export` streams them to an NDJSON log.
IDs are only generated on the enabled path, so constraint 1 holds.

Enable globally with the ``FPFA_TRACE=1`` environment variable, or
programmatically with :func:`enable`.  The daemon enables its own
tracer when serving ``/metrics`` consumers that want span rollups.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from typing import Any, Iterator

__all__ = [
    "Tracer",
    "TRACER",
    "span",
    "event",
    "count",
    "enabled",
    "enable",
    "disable",
    "snapshot",
    "reset",
    "context",
    "attach",
    "capture",
    "adopt",
    "record_span",
]

#: Default capacity of the recent-event ring.
DEFAULT_RING = 1024

#: Hard cap on entries one :func:`capture` collects — a runaway job
#: must not grow the worker's return payload without bound.
CAPTURE_LIMIT = 4096


# ---------------------------------------------------------------- #
# Identifiers.                                                      #
# ---------------------------------------------------------------- #

#: Per-process random prefix + pid + counter keeps span ids unique
#: across a forked worker pool without an os.urandom syscall per
#: span: children inherit the prefix and counter, but not the pid.
_ID_PREFIX = os.urandom(2).hex()
_IDS = itertools.count(1)


def _new_span_id() -> str:
    """A 16-hex span id (8 bytes, W3C trace-context sized)."""
    return (f"{_ID_PREFIX}{os.getpid() & 0xFFFF:04x}"
            f"{next(_IDS) & 0xFFFFFFFF:08x}")


def _new_trace_id() -> str:
    """A 32-hex trace id (16 bytes).  Roots are rare (one per sweep
    or job), so the urandom syscall is off the hot path."""
    return f"{os.urandom(12).hex()}{next(_IDS) & 0xFFFFFFFF:08x}"


class _NoopSpan:
    """Shared do-nothing context manager returned while disabled.

    A single module-level instance serves every disabled ``span()``
    call, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def note(self, **attrs: Any) -> None:
        """Accept and drop late attributes (API parity with _Span)."""


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: times itself and reports back to its tracer."""

    __slots__ = ("tracer", "name", "attrs", "depth", "started",
                 "trace_id", "span_id", "parent_id")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.started = 0.0
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: str | None = None

    def __enter__(self) -> "_Span":
        local = self.tracer._local
        self.depth = getattr(local, "depth", 0)
        local.depth = self.depth + 1
        stack = getattr(local, "stack", None)
        if stack is None:
            stack = local.stack = []
        if stack:
            self.trace_id, self.parent_id = stack[-1]
        else:
            remote = getattr(local, "remote", None)
            if remote is not None:
                self.trace_id, self.parent_id = remote
            else:
                self.trace_id = _new_trace_id()
                self.parent_id = None
        self.span_id = _new_span_id()
        stack.append((self.trace_id, self.span_id))
        # Read the clock last so nesting bookkeeping is outside the
        # measured window.
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        duration = time.perf_counter() - self.started
        local = self.tracer._local
        local.depth = self.depth
        stack = getattr(local, "stack", None)
        if stack:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = getattr(exc_type, "__name__",
                                          str(exc_type))
        self.tracer._finish(self.name, duration, self.depth,
                            self.attrs, self.trace_id, self.span_id,
                            self.parent_id)

    def note(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. a result
        count known only after the work ran)."""
        self.attrs.update(attrs)


class _NoopAttach:
    """Shared no-op for :func:`attach` while disabled/contextless."""

    __slots__ = ()

    def __enter__(self) -> "_NoopAttach":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_ATTACH = _NoopAttach()


class _Attach:
    """Sets a remote parent for root spans on the current thread."""

    __slots__ = ("tracer", "ctx", "_prior")

    def __init__(self, tracer: "Tracer",
                 ctx: tuple[str, str]) -> None:
        self.tracer = tracer
        self.ctx = ctx

    def __enter__(self) -> "_Attach":
        local = self.tracer._local
        self._prior = getattr(local, "remote", None)
        local.remote = self.ctx
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.tracer._local.remote = self._prior


class _Capture:
    """Sink collecting entries finished on the registering thread.

    Used around one job's execution in a worker: the captured span
    entries ride back to the daemon in the job's ``info`` side
    channel and are :meth:`Tracer.adopt`-ed there.  Bounded by
    ``CAPTURE_LIMIT``; inert when the tracer is disabled.
    """

    __slots__ = ("tracer", "entries", "_ident", "_active")

    def __init__(self, tracer: "Tracer") -> None:
        self.tracer = tracer
        self.entries: list[dict[str, Any]] = []
        self._ident = 0
        self._active = False

    def __call__(self, entry: dict[str, Any]) -> None:
        if (threading.get_ident() == self._ident
                and len(self.entries) < CAPTURE_LIMIT):
            self.entries.append(entry)

    def __enter__(self) -> "_Capture":
        if self.tracer._enabled:
            self._ident = threading.get_ident()
            self._active = True
            self.tracer.add_sink(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._active:
            self._active = False
            self.tracer.remove_sink(self)


class Tracer:
    """Span/event/counter recorder with bounded memory.

    Thread-safe: span rollups, counters and the ring share one lock,
    taken only on the *enabled* paths.  Nesting depth and the span
    stack are tracked in ``threading.local`` so concurrent worker
    threads do not corrupt each other's parentage.
    """

    def __init__(self, enabled: bool = False,
                 ring: int = DEFAULT_RING) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ring: deque[dict[str, Any]] = deque(maxlen=ring)
        self._spans: dict[str, dict[str, float]] = {}
        self._counters: dict[str, int] = {}
        self._seq = 0
        self._sinks: tuple = ()

    # -- switches ---------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- sinks ------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Register *sink* (a callable taking one finished entry
        dict).  Sinks run on the finishing thread, outside the
        tracer lock; they must not mutate the entry."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks = self._sinks + (sink,)

    def remove_sink(self, sink) -> None:
        with self._lock:
            self._sinks = tuple(s for s in self._sinks
                                if s is not sink)

    def _emit(self, entries) -> None:
        sinks = self._sinks
        if not sinks:
            return
        for sink in sinks:
            for entry in entries:
                sink(entry)

    # -- recording --------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Context manager timing a named region.

        Returns the shared no-op when disabled; the real span
        otherwise.  Attributes are copied into the ring entry when
        the span closes.
        """
        if not self._enabled:
            return _NOOP_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event into the ring."""
        if not self._enabled:
            return
        current = self._current()
        with self._lock:
            self._seq += 1
            entry = {"seq": self._seq, "kind": "event",
                     "name": name, "at": time.time()}  # fpfa-lint: wall-clock
            if current is not None:
                entry["trace"], entry["span"] = current
            for key, value in attrs.items():
                # Reserved entry fields (kind, trace, at, ...) win
                # over caller attributes of the same name.
                entry.setdefault(key, value)
            self._ring.append(entry)
        self._emit((entry,))

    def count(self, name: str, value: int = 1) -> None:
        """Bump a named monotonic counter."""
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def _record(self, name: str, duration: float, depth: int,
                attrs: dict[str, Any], trace_id: str, span_id: str,
                parent_id: str | None) -> dict[str, Any]:
        """Rollup + ring entry for one finished span (lock held by
        caller's discretion — this takes it)."""
        with self._lock:
            rollup = self._spans.get(name)
            if rollup is None:
                self._spans[name] = {"count": 1, "total": duration,
                                     "min": duration, "max": duration}
            else:
                rollup["count"] += 1
                rollup["total"] += duration
                if duration < rollup["min"]:
                    rollup["min"] = duration
                if duration > rollup["max"]:
                    rollup["max"] = duration
            self._seq += 1
            entry = {"seq": self._seq, "kind": "span", "name": name,
                     "at": time.time(), "depth": depth,  # fpfa-lint: wall-clock
                     "duration": duration, "trace": trace_id,
                     "span": span_id, "parent": parent_id}
            for key, value in attrs.items():
                # Reserved entry fields win over same-named attrs.
                entry.setdefault(key, value)
            self._ring.append(entry)
        return entry

    def _finish(self, name: str, duration: float, depth: int,
                attrs: dict[str, Any], trace_id: str, span_id: str,
                parent_id: str | None) -> None:
        entry = self._record(name, duration, depth, attrs,
                             trace_id, span_id, parent_id)
        self._emit((entry,))

    def record_span(self, name: str, duration: float, *,
                    context: dict | None = None,
                    **attrs: Any) -> None:
        """Record a span whose duration was measured elsewhere.

        For timings that exist as monotonic pairs rather than a code
        region — e.g. a job's queue wait, known only when it starts
        running.  *context* (an :func:`attach`-style dict) makes the
        recorded span a child of a remote parent; without one it
        parents to the thread's current span, or starts a new trace.
        """
        if not self._enabled:
            return
        duration = max(0.0, float(duration))
        trace_id: str | None = None
        parent_id: str | None = None
        if isinstance(context, dict):
            ctx_trace = context.get("trace")
            ctx_span = context.get("span")
            if isinstance(ctx_trace, str) and isinstance(ctx_span, str):
                trace_id, parent_id = ctx_trace, ctx_span
        if trace_id is None:
            current = self._current()
            if current is not None:
                trace_id, parent_id = current
            else:
                trace_id = _new_trace_id()
        entry = self._record(name, duration, 0, dict(attrs),
                             trace_id, _new_span_id(), parent_id)
        self._emit((entry,))

    def adopt(self, entries) -> int:
        """Fold entries recorded in another process into this tracer.

        Worker captures and harvested daemon rings re-enter here:
        each entry keeps its ids, name, attrs and duration (so
        parent linkage survives the hop) but is re-sequenced into
        this tracer's ring and counted into its rollups.  Adopted
        entries flow to sinks, so an installed flight recorder logs
        them too.  Returns the number adopted; no-op when disabled.
        """
        if not self._enabled or not entries:
            return 0
        adopted: list[dict[str, Any]] = []
        with self._lock:
            for entry in entries:
                if not isinstance(entry, dict) or "name" not in entry:
                    continue
                copied = dict(entry)
                self._seq += 1
                copied["seq"] = self._seq
                duration = copied.get("duration")
                if (copied.get("kind") == "span"
                        and isinstance(duration, (int, float))):
                    name = copied["name"]
                    rollup = self._spans.get(name)
                    if rollup is None:
                        self._spans[name] = {
                            "count": 1, "total": duration,
                            "min": duration, "max": duration}
                    else:
                        rollup["count"] += 1
                        rollup["total"] += duration
                        if duration < rollup["min"]:
                            rollup["min"] = duration
                        if duration > rollup["max"]:
                            rollup["max"] = duration
                self._ring.append(copied)
                adopted.append(copied)
        self._emit(adopted)
        return len(adopted)

    # -- context ----------------------------------------------------

    def _current(self) -> tuple[str, str] | None:
        """The active ``(trace_id, span_id)`` on this thread — the
        innermost open span, else an attached remote parent."""
        local = self._local
        stack = getattr(local, "stack", None)
        if stack:
            return stack[-1]
        return getattr(local, "remote", None)

    def context(self) -> dict[str, str] | None:
        """The current trace context as a wire-ready dict
        (``{"trace": ..., "span": ...}``), or None when disabled or
        no span is active.  This is what job submissions carry."""
        if not self._enabled:
            return None
        current = self._current()
        if current is None:
            return None
        return {"trace": current[0], "span": current[1]}

    def attach(self, ctx: dict | None):
        """Context manager grafting a remote parent onto this thread.

        Root spans opened inside the ``with`` join *ctx*'s trace as
        children of its span — how a daemon worker's spans become
        children of the coordinator's lease span.  No-op (shared
        instance) when disabled or *ctx* is absent/malformed.
        """
        if not self._enabled or not isinstance(ctx, dict):
            return _NOOP_ATTACH
        trace_id = ctx.get("trace")
        span_id = ctx.get("span")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return _NOOP_ATTACH
        return _Attach(self, (trace_id, span_id))

    def capture(self):
        """Context manager collecting entries this thread finishes —
        see :class:`_Capture`.  Inert while disabled (``.entries``
        stays empty)."""
        return _Capture(self)

    # -- reading ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Consistent copy of rollups, counters and recent events."""
        with self._lock:
            return {
                "enabled": self._enabled,
                "spans": {name: dict(rollup)
                          for name, rollup in self._spans.items()},
                "counters": dict(self._counters),
                "events": [dict(entry) for entry in self._ring],
            }

    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        with self._lock:
            entries = list(self._ring)
        if limit is not None:
            entries = entries[-limit:]
        return entries

    def reset(self) -> None:
        """Drop all recorded data; the enabled flag and registered
        sinks are untouched."""
        with self._lock:
            self._ring.clear()
            self._spans.clear()
            self._counters.clear()
            self._seq = 0


#: The module-level default tracer every instrumented layer uses.
TRACER = Tracer(enabled=bool(os.environ.get("FPFA_TRACE")))


def span(name: str, **attrs: Any):
    return TRACER.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    TRACER.event(name, **attrs)


def count(name: str, value: int = 1) -> None:
    TRACER.count(name, value)


def enabled() -> bool:
    return TRACER.enabled


def enable() -> None:
    TRACER.enable()


def disable() -> None:
    TRACER.disable()


def snapshot() -> dict[str, Any]:
    return TRACER.snapshot()


def reset() -> None:
    TRACER.reset()


def context() -> dict[str, str] | None:
    return TRACER.context()


def attach(ctx: dict | None):
    return TRACER.attach(ctx)


def capture():
    return TRACER.capture()


def adopt(entries) -> int:
    return TRACER.adopt(entries)


def record_span(name: str, duration: float, *,
                context: dict | None = None, **attrs: Any) -> None:
    TRACER.record_span(name, duration, context=context, **attrs)


class scoped_tracing:
    """Context manager enabling the default tracer for a region.

    Restores the previous enabled state on exit — the bench harness
    and tests use this so they never leak a globally-enabled tracer::

        with trace.scoped_tracing():
            run_sweep(...)
    """

    __slots__ = ("_was",)

    def __enter__(self) -> Tracer:
        self._was = TRACER.enabled
        TRACER.enable()
        return TRACER

    def __exit__(self, *exc_info: object) -> None:
        if not self._was:
            TRACER.disable()


def iter_span_names(snapshot_dict: dict[str, Any]) -> Iterator[str]:
    """Span names present in a snapshot, sorted for stable output."""
    return iter(sorted(snapshot_dict.get("spans", {})))
