"""In-process tracing: nested spans, counters, ring-buffered events.

The tracer is the observation half of the observability layer — the
metrics registry (:mod:`repro.obs.metrics`) is the exposition half.
Hot layers call the **module-level default tracer** through the free
functions below::

    from repro.obs import trace

    with trace.span("pipeline.schedule"):
        ...
    trace.event("distributed.steal", daemon=label, chunk=index)
    trace.count("queue.finished")

Design constraints, in priority order:

1. **Zero cost while disabled.**  Tracing is off by default;
   mapping's hot loops (per-point evaluation inside a sweep, queue
   pops under the service lock) must not pay for instrumentation
   nobody asked for.  A disabled ``span()`` returns one shared no-op
   context manager — no allocation, no clock read, no lock.
   ``event()``/``count()`` are a single attribute check.  Call sites
   that would *build* expensive attributes guard on
   ``trace.enabled()`` first.
2. **Observation never mutates.**  Span bodies return whatever the
   traced code returns; the tracer holds its own copies of
   everything it records.  Mapped artifacts stay bit-identical with
   tracing on (see ``tests/test_obs.py``).
3. **Monotonic durations.**  Span timing uses
   :func:`time.perf_counter` pairs; wall-clock timestamps on ring
   events are presentation-only, matching the PR 5 convention in
   ``service/queue.py``.

Aggregation model: per-span-name ``{count, total, min, max}``
rollups plus named counters, both O(distinct names) memory; recent
finished spans and point events land in one bounded ring
(``collections.deque(maxlen=...)``) so a long sweep cannot grow the
tracer without bound.  Nesting depth is tracked per thread so the
ring shows call structure even when the worker pool interleaves
spans from many threads.

Enable globally with the ``FPFA_TRACE=1`` environment variable, or
programmatically with :func:`enable`.  The daemon enables its own
tracer when serving ``/metrics`` consumers that want span rollups.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Iterator

__all__ = [
    "Tracer",
    "TRACER",
    "span",
    "event",
    "count",
    "enabled",
    "enable",
    "disable",
    "snapshot",
    "reset",
]

#: Default capacity of the recent-event ring.
DEFAULT_RING = 1024


class _NoopSpan:
    """Shared do-nothing context manager returned while disabled.

    A single module-level instance serves every disabled ``span()``
    call, so the disabled path allocates nothing.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def note(self, **attrs: Any) -> None:
        """Accept and drop late attributes (API parity with _Span)."""


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: times itself and reports back to its tracer."""

    __slots__ = ("tracer", "name", "attrs", "depth", "started")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self.started = 0.0

    def __enter__(self) -> "_Span":
        stack = self.tracer._local
        self.depth = getattr(stack, "depth", 0)
        stack.depth = self.depth + 1
        # Read the clock last so nesting bookkeeping is outside the
        # measured window.
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        duration = time.perf_counter() - self.started
        self.tracer._local.depth = self.depth
        if exc_type is not None:
            self.attrs["error"] = getattr(exc_type, "__name__",
                                          str(exc_type))
        self.tracer._finish(self.name, duration, self.depth,
                            self.attrs)

    def note(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. a result
        count known only after the work ran)."""
        self.attrs.update(attrs)


class Tracer:
    """Span/event/counter recorder with bounded memory.

    Thread-safe: span rollups, counters and the ring share one lock,
    taken only on the *enabled* paths.  Nesting depth is tracked in
    ``threading.local`` so concurrent worker threads do not corrupt
    each other's stacks.
    """

    def __init__(self, enabled: bool = False,
                 ring: int = DEFAULT_RING) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ring: deque[dict[str, Any]] = deque(maxlen=ring)
        self._spans: dict[str, dict[str, float]] = {}
        self._counters: dict[str, int] = {}
        self._seq = 0

    # -- switches ---------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- recording --------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Context manager timing a named region.

        Returns the shared no-op when disabled; the real span
        otherwise.  Attributes are copied into the ring entry when
        the span closes.
        """
        if not self._enabled:
            return _NOOP_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event into the ring."""
        if not self._enabled:
            return
        with self._lock:
            self._seq += 1
            entry = {"seq": self._seq, "kind": "event",
                     "name": name, "at": time.time()}
            if attrs:
                entry.update(attrs)
            self._ring.append(entry)

    def count(self, name: str, value: int = 1) -> None:
        """Bump a named monotonic counter."""
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def _finish(self, name: str, duration: float, depth: int,
                attrs: dict[str, Any]) -> None:
        with self._lock:
            rollup = self._spans.get(name)
            if rollup is None:
                self._spans[name] = {"count": 1, "total": duration,
                                     "min": duration, "max": duration}
            else:
                rollup["count"] += 1
                rollup["total"] += duration
                if duration < rollup["min"]:
                    rollup["min"] = duration
                if duration > rollup["max"]:
                    rollup["max"] = duration
            self._seq += 1
            entry = {"seq": self._seq, "kind": "span", "name": name,
                     "at": time.time(), "depth": depth,
                     "duration": duration}
            if attrs:
                entry.update(attrs)
            self._ring.append(entry)

    # -- reading ----------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Consistent copy of rollups, counters and recent events."""
        with self._lock:
            return {
                "enabled": self._enabled,
                "spans": {name: dict(rollup)
                          for name, rollup in self._spans.items()},
                "counters": dict(self._counters),
                "events": [dict(entry) for entry in self._ring],
            }

    def counters(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        with self._lock:
            entries = list(self._ring)
        if limit is not None:
            entries = entries[-limit:]
        return entries

    def reset(self) -> None:
        """Drop all recorded data; the enabled flag is untouched."""
        with self._lock:
            self._ring.clear()
            self._spans.clear()
            self._counters.clear()
            self._seq = 0


#: The module-level default tracer every instrumented layer uses.
TRACER = Tracer(enabled=bool(os.environ.get("FPFA_TRACE")))


def span(name: str, **attrs: Any):
    return TRACER.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    TRACER.event(name, **attrs)


def count(name: str, value: int = 1) -> None:
    TRACER.count(name, value)


def enabled() -> bool:
    return TRACER.enabled


def enable() -> None:
    TRACER.enable()


def disable() -> None:
    TRACER.disable()


def snapshot() -> dict[str, Any]:
    return TRACER.snapshot()


def reset() -> None:
    TRACER.reset()


class scoped_tracing:
    """Context manager enabling the default tracer for a region.

    Restores the previous enabled state on exit — the bench harness
    and tests use this so they never leak a globally-enabled tracer::

        with trace.scoped_tracing():
            run_sweep(...)
    """

    __slots__ = ("_was",)

    def __enter__(self) -> Tracer:
        self._was = TRACER.enabled
        TRACER.enable()
        return TRACER

    def __exit__(self, *exc_info: object) -> None:
        if not self._was:
            TRACER.disable()


def iter_span_names(snapshot_dict: dict[str, Any]) -> Iterator[str]:
    """Span names present in a snapshot, sorted for stable output."""
    return iter(sorted(snapshot_dict.get("spans", {})))
