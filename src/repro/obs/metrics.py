"""Prometheus-style metrics: registry, text renderer, strict parser.

The daemon owns one :class:`MetricsRegistry` per
``MappingService`` instance (never a process-global — the test
harness runs several ``ServiceThread`` daemons in one process) and
serves :meth:`MetricsRegistry.render` as ``GET /metrics`` in the
Prometheus text exposition format 0.0.4::

    # HELP fpfa_queue_depth Jobs waiting in the queue.
    # TYPE fpfa_queue_depth gauge
    fpfa_queue_depth 3
    # HELP fpfa_job_runtime_seconds Job runtime by kind.
    # TYPE fpfa_job_runtime_seconds histogram
    fpfa_job_runtime_seconds_bucket{kind="map",le="0.1"} 2
    ...
    fpfa_job_runtime_seconds_sum{kind="map"} 0.4821
    fpfa_job_runtime_seconds_count{kind="map"} 5

Three metric kinds, mirroring the Prometheus client model:

* **Counter** — monotonic totals, rendered with the ``_total``
  suffix.  Besides ``inc()``, counters support
  :meth:`Counter.set_total` so scrape-time code can sync them from
  the monotonic counters the service already keeps
  (``ServiceStats``, queue stats, cache stats) instead of
  double-counting.
* **Gauge** — point-in-time values (queue depth, store entries,
  frontend reuse ratio), settable to any float.
* **Histogram** — fixed cumulative buckets chosen at registration,
  always ending in ``+Inf``; tracks ``_sum`` and ``_count``.  Used
  for job queue-wait and runtime latency.

All three support labels: declared as a tuple of label *names* at
registration, bound per-observation as keyword arguments.  Each
label combination is an independent series.

:func:`parse_prometheus` is the counterpart strict parser.  It is
deliberately shared between the unit tests and the CI smoke job
(``tools/obs_smoke.py``) so both validate the endpoint with the same
rules: every sample belongs to a ``# TYPE``-declared family, label
syntax is well-formed, histogram buckets are cumulative and the
``+Inf`` bucket equals ``_count``.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Sequence

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ParsedMetrics",
    "MetricsParseError",
    "parse_prometheus",
    "DEFAULT_BUCKETS",
]

#: Default latency buckets (seconds) — tuned for mapping jobs, which
#: range from ~10 ms (cache hit) to minutes (large remote chunks).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r"\""))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _label_key(names: Sequence[str],
               labels: dict[str, str]) -> tuple[str, ...]:
    if set(labels) != set(names):
        raise ValueError(
            f"expected labels {tuple(names)}, got {tuple(labels)}")
    return tuple(str(labels[name]) for name in names)


def _render_labels(names: Sequence[str], key: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(name, value) for name, value in zip(names, key)]
    pairs.extend(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in pairs)
    return "{" + inner + "}"


class _Metric:
    """Common shape: name, help text, label names, series dict."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labels: Sequence[str], lock: threading.Lock) -> None:
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_PATTERN.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.labels = tuple(labels)
        self._lock = lock
        self._series: dict[tuple[str, ...], Any] = {}

    def _ordered_series(self) -> list[tuple[tuple[str, ...], Any]]:
        return sorted(self._series.items())


class Counter(_Metric):
    kind = "counter"

    def inc(self, value: float = 1, **labels: str) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labels, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + value

    def set_total(self, value: float, **labels: str) -> None:
        """Sync from an external monotonic counter at scrape time.

        The service layer already keeps lifetime totals
        (``ServiceStats``, queue/cache stats); re-counting them here
        would drift.  ``set_total`` adopts the authoritative value —
        still monotonic from the scraper's point of view because the
        source is.
        """
        key = _label_key(self.labels, labels)
        with self._lock:
            self._series[key] = value

    def value(self, **labels: str) -> float:
        key = _label_key(self.labels, labels)
        with self._lock:
            return self._series.get(key, 0)

    def render(self) -> Iterable[str]:
        yield f"# HELP {self.name}_total {_escape_help(self.help)}"
        yield f"# TYPE {self.name}_total counter"
        for key, value in self._ordered_series():
            labels = _render_labels(self.labels, key)
            yield f"{self.name}_total{labels} {_format_value(value)}"


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(self.labels, labels)
        with self._lock:
            self._series[key] = value

    def value(self, **labels: str) -> float:
        key = _label_key(self.labels, labels)
        with self._lock:
            return self._series.get(key, 0)

    def render(self) -> Iterable[str]:
        yield f"# HELP {self.name} {_escape_help(self.help)}"
        yield f"# TYPE {self.name} gauge"
        for key, value in self._ordered_series():
            labels = _render_labels(self.labels, key)
            yield f"{self.name}{labels} {_format_value(value)}"


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labels: Sequence[str], lock: threading.Lock,
                 buckets: Sequence[float]) -> None:
        super().__init__(name, help_text, labels, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]
        self.bounds = bounds

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self.labels, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {"buckets": [0] * len(self.bounds),
                          "sum": 0.0, "count": 0}
                self._series[key] = series
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    series["buckets"][index] += 1
            series["sum"] += value
            series["count"] += 1

    def render(self) -> Iterable[str]:
        yield f"# HELP {self.name} {_escape_help(self.help)}"
        yield f"# TYPE {self.name} histogram"
        for key, series in self._ordered_series():
            for bound, cumulative in zip(self.bounds,
                                         series["buckets"]):
                labels = _render_labels(
                    self.labels, key,
                    extra=(("le", _format_value(bound)),))
                yield (f"{self.name}_bucket{labels} "
                       f"{cumulative}")
            inf_labels = _render_labels(self.labels, key,
                                        extra=(("le", "+Inf"),))
            yield f"{self.name}_bucket{inf_labels} {series['count']}"
            labels = _render_labels(self.labels, key)
            yield (f"{self.name}_sum{labels} "
                   f"{_format_value(series['sum'])}")
            yield f"{self.name}_count{labels} {series['count']}"


class MetricsRegistry:
    """Ordered collection of metrics with one shared lock.

    Registration is idempotent-hostile on purpose: registering the
    same name twice is a bug (two code paths fighting over one
    family), so it raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(
                    f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str,
                labels: Sequence[str] = ()) -> Counter:
        return self._register(
            Counter(name, help_text, labels, self._lock))

    def gauge(self, name: str, help_text: str,
              labels: Sequence[str] = ()) -> Gauge:
        return self._register(
            Gauge(name, help_text, labels, self._lock))

    def histogram(self, name: str, help_text: str,
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._register(
            Histogram(name, help_text, labels, self._lock, buckets))

    def render(self) -> str:
        """The full exposition document, trailing newline included."""
        lines: list[str] = []
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------- #
# Parsing — shared by tests and tools/obs_smoke.py.                 #
# ---------------------------------------------------------------- #

class MetricsParseError(ValueError):
    """The exposition text violates the format or its invariants."""


_SAMPLE_PATTERN = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$")

_LABEL_PAIR_PATTERN = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*'
    r'"(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)')


class ParsedMetrics:
    """Families and samples extracted from exposition text.

    ``families`` maps family name → ``{"type": ..., "help": ...}``.
    ``samples`` maps sample name → list of ``(labels, value)`` where
    labels is a dict.  Histogram component samples (``_bucket``,
    ``_sum``, ``_count``) appear under their full sample names.
    """

    def __init__(self) -> None:
        self.families: dict[str, dict[str, str]] = {}
        self.samples: dict[str, list[tuple[dict[str, str], float]]] \
            = {}

    def family(self, name: str) -> dict[str, str]:
        try:
            return self.families[name]
        except KeyError:
            raise MetricsParseError(
                f"no family {name!r} in exposition") from None

    def values(self, name: str) -> list[tuple[dict[str, str], float]]:
        return self.samples.get(name, [])

    def value(self, name: str, **labels: str) -> float:
        wanted = {k: str(v) for k, v in labels.items()}
        for sample_labels, value in self.samples.get(name, []):
            if sample_labels == wanted:
                return value
        raise MetricsParseError(
            f"no sample {name!r} with labels {wanted}")


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    position = 0
    while position < len(text):
        match = _LABEL_PAIR_PATTERN.match(text, position)
        if match is None:
            raise MetricsParseError(
                f"malformed labels: {text!r}")
        raw = match.group("value")
        value = (raw.replace(r"\n", "\n").replace(r"\"", '"')
                 .replace(r"\\", "\\"))
        labels[match.group("name")] = value
        position = match.end()
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise MetricsParseError(
            f"malformed sample value: {text!r}") from None


def _family_for_sample(sample_name: str,
                       families: dict[str, dict[str, str]]
                       ) -> str | None:
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families \
                    and families[base]["type"] == "histogram":
                return base
    return None


def parse_prometheus(text: str) -> ParsedMetrics:
    """Parse and validate Prometheus text exposition format.

    Strictness beyond plain parsing (these are the endpoint's
    contract, asserted by tests and the CI smoke job):

    * every sample belongs to a family declared with ``# TYPE``;
    * counter samples end in ``_total``;
    * histogram buckets are cumulative (non-decreasing in ``le``)
      and the ``+Inf`` bucket equals the ``_count`` sample per
      label set.
    """
    parsed = ParsedMetrics()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(None, 1)
            name = parts[0]
            parsed.families.setdefault(name, {"type": "untyped",
                                              "help": ""})
            parsed.families[name]["help"] = \
                parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise MetricsParseError(
                    f"line {number}: malformed TYPE: {line!r}")
            name, kind = parts
            if kind not in ("counter", "gauge", "histogram",
                            "summary", "untyped"):
                raise MetricsParseError(
                    f"line {number}: unknown type {kind!r}")
            parsed.families.setdefault(name, {"type": kind,
                                              "help": ""})
            parsed.families[name]["type"] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_PATTERN.match(line)
        if match is None:
            raise MetricsParseError(
                f"line {number}: malformed sample: {line!r}")
        sample_name = match.group("name")
        family = _family_for_sample(sample_name, parsed.families)
        if family is None:
            raise MetricsParseError(
                f"line {number}: sample {sample_name!r} has no "
                f"# TYPE family")
        if parsed.families[family]["type"] == "counter" \
                and not sample_name.endswith("_total"):
            raise MetricsParseError(
                f"line {number}: counter sample {sample_name!r} "
                f"missing _total suffix")
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_value(match.group("value"))
        parsed.samples.setdefault(sample_name, []).append(
            (labels, value))
    _validate_histograms(parsed)
    return parsed


def _validate_histograms(parsed: ParsedMetrics) -> None:
    for family, meta in parsed.families.items():
        if meta["type"] != "histogram":
            continue
        buckets = parsed.samples.get(f"{family}_bucket", [])
        counts = parsed.samples.get(f"{family}_count", [])
        if not buckets and not counts:
            continue  # declared but never observed — legal
        if not buckets or not counts:
            raise MetricsParseError(
                f"histogram {family!r} missing _bucket or _count "
                f"samples")
        series: dict[tuple[tuple[str, str], ...],
                     list[tuple[float, float]]] = {}
        for labels, value in buckets:
            bound_text = labels.get("le")
            if bound_text is None:
                raise MetricsParseError(
                    f"histogram {family!r} bucket without le label")
            bound = _parse_value(bound_text)
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            series.setdefault(key, []).append((bound, value))
        count_by_key = {
            tuple(sorted(labels.items())): value
            for labels, value in counts}
        for key, entries in series.items():
            entries.sort(key=lambda pair: pair[0])
            previous = -math.inf
            cumulative = -1.0
            for bound, value in entries:
                if bound <= previous:
                    raise MetricsParseError(
                        f"histogram {family!r} duplicate bucket "
                        f"bound {bound}")
                if value < cumulative:
                    raise MetricsParseError(
                        f"histogram {family!r} buckets not "
                        f"cumulative at le={bound}")
                previous, cumulative = bound, value
            if entries[-1][0] != math.inf:
                raise MetricsParseError(
                    f"histogram {family!r} missing +Inf bucket")
            if key not in count_by_key:
                raise MetricsParseError(
                    f"histogram {family!r} bucket series without "
                    f"matching _count")
            if entries[-1][1] != count_by_key[key]:
                raise MetricsParseError(
                    f"histogram {family!r}: +Inf bucket "
                    f"{entries[-1][1]} != count {count_by_key[key]}")
