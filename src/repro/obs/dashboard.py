"""The live fleet dashboard behind ``fpfa-map dashboard``.

Two halves, both stdlib-only:

* :class:`FleetCollector` — a polling thread that scrapes every
  daemon's ``/stats`` and ``/metrics`` on an interval and tails the
  NDJSON event stream of each in-flight job it discovers, merging
  everything into one versioned *fleet snapshot* (a plain JSON-able
  dict, sequence-numbered so consumers can wait for "newer than what
  I have").
* :class:`DashboardServer` — a ``http.server.ThreadingHTTPServer``
  serving three routes: ``/`` (the self-contained HTML/JS page next
  to this module), ``/api/fleet`` (the latest snapshot as JSON) and
  ``/events`` (the snapshot feed as Server-Sent Events — one ``data:``
  frame per collector tick, heartbeat comments while idle).

The dashboard is an **observer of the fleet, never a participant**:
it only issues GETs; it cannot submit, shut down or otherwise mutate
a daemon.  Losing a daemon mid-sweep is a normal, rendered condition
(the daemon's card goes stale and the lease timeline shows the
steal), mirroring the distributed sweep's own fault model.

The automated acceptance test drives exactly the browser's path —
HTTP index, SSE frames — against a real 2-daemon fleet; no browser
required.  See ``docs/observability.md`` for a walkthrough.
"""

from __future__ import annotations

import http.server
import json
import pathlib
import threading
import time
from collections import deque
from typing import Iterable

from repro.dse.distributed import parse_remotes
from repro.obs.metrics import MetricsParseError, parse_prometheus
from repro.service.client import ServiceClient, ServiceError
from repro.service.resilience import RetryPolicy, resilience_counter

#: Fleet events kept in the rolling timeline.
TIMELINE_LIMIT = 256
#: Reconnect schedule for a broken job-event stream: a daemon restart
#: mid-tail gets a few backoff-spaced second chances before the tail
#: is abandoned (``attempts`` counts connections, so 4 = one original
#: + three reconnects).
TAIL_RECONNECT = RetryPolicy(attempts=4, base_delay=0.2,
                             max_delay=2.0, jitter=0.25)
#: Concurrent job tails across the whole fleet — a sweep can create
#: hundreds of chunk jobs; tailing a bounded set keeps the collector's
#: socket use flat while /stats still covers the aggregate.
MAX_TAILS = 32
#: SSE heartbeat period while no new snapshot arrives.
HEARTBEAT_SECONDS = 15.0

_ASSET = pathlib.Path(__file__).with_name("dashboard.html")


def _flatten_metrics(text: str) -> dict[str, float]:
    """Prometheus text → ``{"name{k=v}": value}`` for the page.

    Histogram buckets are dropped (the page shows ``_sum``/``_count``
    derived latency, not full distributions); a scrape that fails to
    parse yields an empty dict rather than poisoning the snapshot.
    """
    try:
        parsed = parse_prometheus(text)
    except MetricsParseError:
        return {}
    flat: dict[str, float] = {}
    for name, samples in parsed.samples.items():
        if name.endswith("_bucket"):
            continue
        for labels, value in samples:
            key = name
            if labels:
                inner = ",".join(f"{k}={v}"
                                 for k, v in sorted(labels.items()))
                key = f"{name}{{{inner}}}"
            flat[key] = value
    return flat


class FleetCollector:
    """Poll a daemon fleet into one sequence-numbered snapshot.

    ``start()`` launches the poll thread; ``snapshot()`` returns the
    latest fleet picture; ``wait(seq, timeout)`` blocks until a
    snapshot newer than *seq* exists (the SSE feed's primitive).
    """

    def __init__(self, remotes, *, interval: float = 1.0,
                 timeout: float = 5.0,
                 timeline: int = TIMELINE_LIMIT,
                 max_tails: int = MAX_TAILS):
        self.remotes = parse_remotes(remotes)
        if not self.remotes:
            raise ValueError("dashboard needs at least one remote")
        self.interval = interval
        self.timeout = timeout
        self.max_tails = max_tails
        self._lock = threading.Lock()
        self._updated = threading.Condition(self._lock)
        self._timeline: deque[dict] = deque(maxlen=timeline)
        self._snapshot: dict = {"seq": 0, "at": None,
                                "at_mono": None, "daemons": [],
                                "timeline": []}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: (remote, job id) pairs ever tailed — a finished tail must
        #: not restart when the job lingers in the daemon's history.
        self._tailed: set[tuple[tuple[str, int], str]] = set()
        self._live_tails = 0
        #: Event-stream reconnects performed (shown in the snapshot
        #: so the page can surface flapping daemons).
        self._reconnects = 0
        #: Consecutive failed polls per daemon — 0 means healthy.
        self._down_polls: dict[tuple[str, int], int] = {}

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "FleetCollector":
        self._thread = threading.Thread(target=self._run,
                                        name="fpfa-dashboard-poll",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "FleetCollector":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- reading ------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return self._snapshot

    def wait(self, seq: int, timeout: float) -> dict:
        """The first snapshot with ``seq`` greater than *seq*, or the
        current one when *timeout* elapses first."""
        with self._updated:
            self._updated.wait_for(
                lambda: self._snapshot["seq"] > seq, timeout)
            return self._snapshot

    # -- polling ------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            started = time.monotonic()
            self._poll_once()
            elapsed = time.monotonic() - started
            self._stop.wait(max(0.05, self.interval - elapsed))

    def _poll_once(self) -> None:
        daemons = [self._poll_daemon(remote)
                   for remote in self.remotes]
        with self._updated:
            self._snapshot = {
                "seq": self._snapshot["seq"] + 1,
                # The PR 5 queue.py convention: the wall stamp is
                # presentation-only; staleness/interval math uses
                # the paired monotonic reading.
                "at": time.time(),  # fpfa-lint: wall-clock
                "at_mono": time.monotonic(),
                "daemons": daemons,
                "reconnects": self._reconnects,
                "timeline": list(self._timeline),
            }
            self._updated.notify_all()

    def _poll_daemon(self, remote: tuple[str, int]) -> dict:
        label = f"{remote[0]}:{remote[1]}"
        client = ServiceClient(*remote, timeout=self.timeout)
        entry: dict = {"url": label, "ok": False}
        try:
            entry["stats"] = client.stats()
            entry["metrics"] = _flatten_metrics(client.metrics())
            jobs = client.jobs()
        except (ServiceError, OSError, ValueError) as error:
            entry["error"] = str(error)
            down = self._down_polls.get(remote, 0) + 1
            self._down_polls[remote] = down
            entry["status"] = "down"
            entry["down_polls"] = down
            return entry
        self._down_polls[remote] = 0
        entry["ok"] = True
        entry["status"] = "ok"
        entry["jobs"] = {}
        for job in jobs:
            state = job["state"]
            entry["jobs"][state] = entry["jobs"].get(state, 0) + 1
        self._tail_new_jobs(remote, label, jobs)
        return entry

    def _tail_new_jobs(self, remote: tuple[str, int], label: str,
                       jobs: Iterable[dict]) -> None:
        # Terminal jobs are tailed too: the events endpoint replays a
        # finished job's whole lifecycle and closes, so a job that
        # completed between two polls still lands in the timeline.
        for job in jobs:
            key = (remote, job["id"])
            with self._lock:
                if key in self._tailed \
                        or self._live_tails >= self.max_tails:
                    continue
                self._tailed.add(key)
                self._live_tails += 1
            thread = threading.Thread(
                target=self._tail_job,
                args=(remote, label, job["id"], job["kind"]),
                name=f"fpfa-dashboard-tail-{job['id']}",
                daemon=True)
            thread.start()

    def _tail_job(self, remote: tuple[str, int], label: str,
                  job_id: str, kind: str) -> None:
        """Follow one job's NDJSON stream into the shared timeline.

        A stream broken mid-flight (the daemon restarted under the
        tail) is reconnected on :data:`TAIL_RECONNECT`'s backoff
        schedule instead of silently abandoning the daemon's events;
        the endpoint replays a job's lifecycle from the start, so
        already-seen events are skipped by count on replay.
        """
        client = ServiceClient(*remote, timeout=self.timeout + 300)
        seen = 0
        attempt = 0
        try:
            while not self._stop.is_set():
                try:
                    for index, event in enumerate(
                            client.events(job_id)):
                        if index < seen:
                            continue  # replayed prefix after reconnect
                        seen = index + 1
                        entry = {"daemon": label, "job": job_id,
                                 "kind": kind, **event}
                        with self._lock:
                            self._timeline.append(entry)
                        if self._stop.is_set():
                            break
                    return  # stream ended cleanly: job is terminal
                except (ServiceError, OSError, ValueError):
                    attempt += 1
                    if attempt >= TAIL_RECONNECT.attempts \
                            or self._stop.is_set():
                        return  # /stats still shows the daemon down
                    with self._lock:
                        self._reconnects += 1
                    resilience_counter(
                        "fpfa_dashboard_reconnects").inc()
                    time.sleep(TAIL_RECONNECT.delay(
                        attempt, key=f"{label}/{job_id}"))
        finally:
            with self._lock:
                self._live_tails -= 1


# ---------------------------------------------------------------------------
# HTTP + SSE front
# ---------------------------------------------------------------------------

class _DashboardHandler(http.server.BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 — stdlib name
        pass  # the dashboard is the quiet observer; no access log

    @property
    def collector(self) -> FleetCollector:
        return self.server.collector  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 — stdlib casing
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/":
            self._send_index()
        elif path == "/api/fleet":
            self._send_fleet()
        elif path == "/events":
            self._stream_events()
        else:
            self._send(404, b'{"error": "not found"}',
                       "application/json")

    def _send(self, status: int, body: bytes,
              content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_index(self) -> None:
        self._send(200, _ASSET.read_bytes(),
                   "text/html; charset=utf-8")

    def _send_fleet(self) -> None:
        body = json.dumps(self.collector.snapshot(),
                          sort_keys=True).encode("utf-8")
        self._send(200, body, "application/json")

    def _stream_events(self) -> None:
        """SSE: one ``data:`` frame per new fleet snapshot.

        Close-delimited; heartbeat comments keep proxies and
        ``EventSource`` reconnect logic quiet while the fleet is
        idle.  A disconnected client surfaces as a broken pipe and
        simply ends this handler thread.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        seq = -1
        try:
            while True:
                snapshot = self.collector.wait(seq,
                                               HEARTBEAT_SECONDS)
                if snapshot["seq"] == seq:
                    self.wfile.write(b": heartbeat\n\n")
                    self.wfile.flush()
                    continue
                seq = snapshot["seq"]
                frame = ("data: "
                         + json.dumps(snapshot, sort_keys=True)
                         + "\n\n").encode("utf-8")
                self.wfile.write(frame)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionError, OSError):
            return


class DashboardServer:
    """The dashboard's HTTP front: start, read the address, stop."""

    def __init__(self, collector: FleetCollector,
                 host: str = "127.0.0.1", port: int = 0):
        self.collector = collector
        self._server = http.server.ThreadingHTTPServer(
            (host, port), _DashboardHandler)
        self._server.daemon_threads = True
        self._server.collector = collector  # type: ignore[attr-defined]
        self.address: tuple[str, int] = \
            self._server.server_address[:2]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.address[0]}:{self.address[1]}"

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="fpfa-dashboard-http", daemon=True)
        self._thread.start()
        return self.address

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "DashboardServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_dashboard(remotes, *, host: str = "127.0.0.1",
                    port: int = 0, interval: float = 1.0,
                    announce=print) -> None:
    """``fpfa-map dashboard``: collect and serve until interrupted."""
    with FleetCollector(remotes, interval=interval) as collector:
        with DashboardServer(collector, host, port) as server:
            fleet = ", ".join(f"{h}:{p}"
                              for h, p in collector.remotes)
            announce(f"dashboard on {server.url} "
                     f"(fleet: {fleet})", flush=True)
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                announce("dashboard stopped")
