"""Command-line driver: map C onto an FPFA tile, or explore tiles.

Eight subcommands::

    fpfa-map map program.c [--listing] [--schedule] [--cdfg]
             [--profile] [--dot out.dot] [--pps N] [--buses N]
             [--library two-level|single-op|mac] [--balance]
             [--tiles N] [--topology crossbar|ring|mesh]
             [--hop-latency N] [--hop-energy E] [--link-bandwidth N]
             [--verify-seed SEED] [--json out.json]

    fpfa-map explore program.c [--kernel NAME] [--sweep DIM=V1,V2,..]
             [--pps LIST] [--buses LIST] [--libraries LIST]
             [--tiles LIST] [--topologies LIST]
             [--balance off|on|both] [--strategy exhaustive|random|hill]
             [--samples N] [--workers N] [--cache DIR]
             [--cache-max-entries N] [--cache-max-bytes N]
             [--remote URL[,URL...]] [--chunk-size N]
             [--remote-timeout S] [--resume]
             [--objectives LIST] [--verify-seed SEED] [--json out.json]

    fpfa-map serve  [--host H] [--port P] [--workers N]
             [--worker-mode process|thread] [--store DIR]
             [--store-max-entries N] [--store-max-bytes N]

    fpfa-map cache  stats|fsck|gc|clear DIR
             [--max-entries N] [--max-bytes N] [--json PATH]

    fpfa-map submit program.c [map flags] [--host H] [--port P]
             [--priority N] [--no-wait] [--timeout S] [--json PATH]

    fpfa-map jobs   [--host H] [--port P] [--job ID] [--follow]
             [--state STATE] [--json PATH]

    fpfa-map dashboard --remote URL[,URL...] [--host H] [--port P]
             [--interval S]

    fpfa-map trace  record <explore flags> [--trace-log PATH]
             | export --log PATH [--out PATH] [--remote URL[,..]]
             | report --log PATH
             | critical-path --log PATH [--trace ID] [--json]

(See ``docs/cli.md`` for the full flag reference,
``docs/service.md`` for the daemon protocol and
``docs/observability.md`` for the dashboard and distributed
tracing.)

``map`` preserves the original single-point behaviour (and plain
``fpfa-map program.c`` still works — a missing subcommand defaults to
``map``): it prints the mapping summary (clusters, levels, cycles,
locality) and, on request, CDFG statistics, the level schedule, the
per-cycle listing, Graphviz output and an interpreter-verification
run.  ``--json`` additionally dumps the full metric dict for scripts;
``--json -`` writes *only* the JSON to stdout (the human-readable
output moves to stderr), so shell pipelines can consume reports
without temp files.

``explore`` sweeps the design space with :mod:`repro.dse`: it builds
a space from ``--sweep``/shortcut flags (default: the stock PP x bus
x library grid), evaluates it on a multiprocessing pool with an
optional persistent result cache, and reports the Pareto frontier
plus the scalarised best point.

``serve``/``submit``/``jobs`` are the :mod:`repro.service` surface:
a persistent mapping daemon, a submission client whose output is
bit-identical to ``map --json``, and a job inspector.
"""

from __future__ import annotations

import argparse
import functools
import json
import os.path
import sys

from repro.arch.params import TileParams
from repro.arch.templates import TemplateLibrary
from repro.arch.tilearray import TOPOLOGIES, TileArrayParams
from repro.cdfg.dot import to_dot
from repro.core.pipeline import (
    compile_frontend,
    map_frontend,
    mapping_config,
    random_input_state,
    report_payload,
    verify_mapping,
)
from repro.eval.metrics import mapping_metrics

SUBCOMMANDS = ("map", "explore", "serve", "submit", "jobs",
               "dashboard", "cache", "trace", "lint")


# ---------------------------------------------------------------------------
# Parser construction
# ---------------------------------------------------------------------------

def _add_point_arguments(parser: argparse.ArgumentParser) -> None:
    """The flags selecting one mapping configuration — shared
    verbatim by ``map`` (offline) and ``submit`` (via the daemon), so
    the two surfaces cannot drift apart."""
    parser.add_argument("file", help="C source file (use '-' for stdin)")
    parser.add_argument("--pps", type=int, default=5,
                        help="processing parts per tile (default 5)")
    parser.add_argument("--buses", type=int, default=10,
                        help="crossbar buses per cycle (default 10)")
    parser.add_argument("--library", default="two-level",
                        choices=sorted(TemplateLibrary.stock()),
                        help="ALU data-path template library")
    parser.add_argument("--balance", action="store_true",
                        help="reassociate accumulation chains into "
                             "balanced trees (shorter critical path)")
    parser.add_argument("--tiles", type=int, default=None, metavar="N",
                        help="run the multi-tile stage: partition the "
                             "clustered graph over N tiles (--tiles 1 "
                             "keeps metrics identical to the "
                             "single-tile flow)")
    parser.add_argument("--topology", default="crossbar",
                        choices=TOPOLOGIES,
                        help="tile-array interconnect (default "
                             "crossbar)")
    parser.add_argument("--hop-latency", type=int, default=1,
                        metavar="N",
                        help="scheduling steps per link hop "
                             "(default 1)")
    parser.add_argument("--hop-energy", type=float, default=6.0,
                        metavar="E",
                        help="energy units per word per hop "
                             "(default 6)")
    parser.add_argument("--link-bandwidth", type=int, default=1,
                        metavar="N",
                        help="words per link per step (default 1)")
    parser.add_argument("--verify-seed", type=int, default=None,
                        metavar="SEED",
                        help="verify program vs interpreter with random "
                             "inputs from SEED")


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Daemon address flags shared by submit and jobs."""
    from repro.service.protocol import DEFAULT_HOST, DEFAULT_PORT
    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"daemon host (default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"daemon port (default {DEFAULT_PORT})")


def _add_map_arguments(parser: argparse.ArgumentParser) -> None:
    _add_point_arguments(parser)
    parser.add_argument("--listing", action="store_true",
                        help="print the per-cycle program")
    parser.add_argument("--schedule", action="store_true",
                        help="print the level schedule (Fig. 4 style)")
    parser.add_argument("--gantt", action="store_true",
                        help="print ASCII occupancy charts (schedule "
                             "and per-cycle program)")
    parser.add_argument("--cdfg", action="store_true",
                        help="print CDFG statistics before/after "
                             "simplification")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-stage wall-time breakdown "
                             "(parse, transforms, cluster, schedule, "
                             "allocate)")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the minimised CDFG as Graphviz DOT")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="dump the mapping metrics as JSON "
                             "('-' for pure-JSON stdout; the "
                             "human-readable output then moves to "
                             "stderr)")


def _add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.service.protocol import DEFAULT_HOST, DEFAULT_PORT
    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"bind address (default {DEFAULT_HOST}; "
                             "the protocol is unauthenticated — keep "
                             "it on loopback or behind a proxy)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port (default {DEFAULT_PORT}, "
                             "0 picks a free one)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker pool size / max concurrent jobs "
                             "(default: CPU count)")
    parser.add_argument("--worker-mode", default="process",
                        choices=("process", "thread"),
                        help="worker pool kind (default process; "
                             "thread keeps jobs in this process)")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="artifact store directory — shares its "
                             "format and keys with `explore --cache` "
                             "(default: a per-run temp dir)")
    parser.add_argument("--store-max-entries", type=int, default=None,
                        metavar="N",
                        help="bound the store to N records; the "
                             "least recently accessed are evicted "
                             "(default: unbounded)")
    parser.add_argument("--store-max-bytes", type=int, default=None,
                        metavar="N",
                        help="bound the store to N bytes of records "
                             "(LRU eviction; default: unbounded)")
    parser.add_argument("--max-queue", type=int, default=1024,
                        help="queued-job depth bound; beyond it "
                             "submissions get HTTP 503 (default 1024)")


def _add_submit_arguments(parser: argparse.ArgumentParser) -> None:
    _add_point_arguments(parser)
    _add_service_arguments(parser)
    parser.add_argument("--priority", type=int, default=0,
                        help="queue priority; higher runs first "
                             "(default 0)")
    parser.add_argument("--no-wait", action="store_true",
                        help="submit and print the job id instead of "
                             "waiting for the result")
    parser.add_argument("--timeout", type=float, default=300.0,
                        metavar="S",
                        help="seconds to wait for the result "
                             "(default 300)")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        default="-",
                        help="where to write the result payload "
                             "(default '-': stdout, bit-identical to "
                             "`map --json -`)")


def _add_jobs_arguments(parser: argparse.ArgumentParser) -> None:
    _add_service_arguments(parser)
    parser.add_argument("--job", metavar="ID", default=None,
                        help="show one job in full instead of the "
                             "overview table")
    parser.add_argument("--follow", action="store_true",
                        help="with --job: stream its progress events "
                             "(NDJSON) until it finishes")
    parser.add_argument("--state", default=None,
                        choices=("queued", "running", "done",
                                 "failed"),
                        help="filter the overview by state")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="dump the raw job view(s) as JSON "
                             "('-' for stdout)")


def _add_dashboard_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--remote", action="append", required=True,
                        metavar="URL[,URL...]",
                        help="running `fpfa-map serve` daemons to "
                             "watch (repeatable or comma-separated) "
                             "— the same flag `explore --remote` "
                             "takes")
    parser.add_argument("--host", default="127.0.0.1",
                        help="dashboard bind address (default "
                             "127.0.0.1)")
    parser.add_argument("--port", type=int, default=8600,
                        help="dashboard bind port (default 8600, "
                             "0 picks a free one)")
    parser.add_argument("--interval", type=float, default=1.0,
                        metavar="S",
                        help="fleet poll period in seconds "
                             "(default 1.0)")


def _add_explore_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", nargs="?",
                        help="C source file ('-' for stdin); or use "
                             "--kernel")
    parser.add_argument("--kernel", metavar="NAME",
                        help="explore a stock kernel from the suite "
                             "instead of a file (e.g. fir16)")
    parser.add_argument("--sweep", action="append", default=[],
                        metavar="DIM=V1,V2,..",
                        help="add one dimension: a TileParams field, "
                             "'library', or a map option (balance); "
                             "repeatable")
    parser.add_argument("--pps", metavar="LIST",
                        help="shortcut for --sweep n_pps=LIST")
    parser.add_argument("--buses", metavar="LIST",
                        help="shortcut for --sweep n_buses=LIST")
    parser.add_argument("--libraries", metavar="LIST",
                        help="shortcut for --sweep library=LIST")
    parser.add_argument("--tiles", metavar="LIST",
                        help="shortcut for --sweep tiles=LIST "
                             "(sweeps the multi-tile partitioning "
                             "stage over tile counts)")
    parser.add_argument("--topologies", metavar="LIST",
                        help="shortcut for --sweep topology=LIST "
                             "(crossbar, ring, mesh)")
    parser.add_argument("--balance", choices=("off", "on", "both"),
                        default=None,
                        help="sweep the accumulation-balancing "
                             "transform (both = off and on)")
    parser.add_argument("--strategy", default="exhaustive",
                        choices=("exhaustive", "random", "hill"),
                        help="search strategy (default exhaustive)")
    parser.add_argument("--samples", type=int, default=64,
                        help="points for --strategy random")
    parser.add_argument("--max-steps", type=int, default=32,
                        help="steps per climb for --strategy hill")
    parser.add_argument("--restarts", type=int, default=2,
                        help="restarts for --strategy hill")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for random/hill strategies")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool processes (default: CPU count)")
    parser.add_argument("--cache", metavar="DIR",
                        help="persistent result-cache directory "
                             "(repeated sweeps skip re-mapping)")
    parser.add_argument("--cache-max-entries", type=int, default=None,
                        metavar="N",
                        help="with --cache: bound the cache to N "
                             "records (LRU eviction; the sweep "
                             "result is unaffected)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        metavar="N",
                        help="with --cache: bound the cache to N "
                             "bytes of records (LRU eviction)")
    parser.add_argument("--remote", action="append", default=[],
                        metavar="URL[,URL...]",
                        help="shard the sweep across running "
                             "`fpfa-map serve` daemons (repeatable "
                             "or comma-separated; chunks from dead "
                             "daemons are re-leased, local "
                             "evaluation is the fallback — records "
                             "stay bit-identical to a local sweep)")
    parser.add_argument("--chunk-size", type=int, default=8,
                        metavar="N",
                        help="points per remote lease with --remote "
                             "(default 8)")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep from its "
                             "checkpoint journal (needs --cache; "
                             "recomputes only records missing from "
                             "the cache)")
    parser.add_argument("--remote-timeout", type=float, default=120.0,
                        metavar="S",
                        help="seconds per lease before a chunk is "
                             "re-leased elsewhere (default 120)")
    parser.add_argument("--objectives", default="cycles,energy,resource",
                        metavar="LIST",
                        help="minimised objectives; metric names, "
                             "'resource', or '-metric' to maximise "
                             "(write --objectives=-metric,.. so the "
                             "leading '-' is not read as a flag; "
                             "default cycles,energy,resource)")
    parser.add_argument("--verify-seed", type=int, default=None,
                        metavar="SEED",
                        help="verify every fresh mapping against the "
                             "interpreter with inputs from SEED")
    parser.add_argument("--table", action="store_true",
                        help="print the full sweep table, not just "
                             "the frontier")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="dump records, frontier, best and stats "
                             "as JSON ('-' for stdout)")


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="trace_command", required=True)
    record = sub.add_parser(
        "record",
        help="run `explore` with the flight recorder on: every span "
             "streams to an NDJSON log, and remote daemons' rings "
             "are harvested into it when the sweep ends")
    _add_explore_arguments(record)
    record.add_argument("--trace-log", metavar="PATH", default=None,
                        help="where to write the NDJSON trace log "
                             "(default: trace-log.ndjson beside "
                             "--cache, or in the working directory)")
    export = sub.add_parser(
        "export",
        help="render a trace log as Chrome trace_event JSON "
             "(loadable in Perfetto / chrome://tracing)")
    export.add_argument("--log", required=True, metavar="PATH",
                        help="the NDJSON trace log to export")
    export.add_argument("--out", default="-", metavar="PATH",
                        help="output path for the trace_event JSON "
                             "(default '-': stdout)")
    export.add_argument("--remote", action="append", default=[],
                        metavar="URL[,URL...]",
                        help="harvest these daemons' /trace rings "
                             "into the log first (entries of traces "
                             "already in the log)")
    report = sub.add_parser(
        "report",
        help="per-span-name rollup (count/total/mean/min/max) of a "
             "trace log")
    report.add_argument("--log", required=True, metavar="PATH",
                        help="the NDJSON trace log to summarise")
    report.add_argument("--json", metavar="PATH", dest="json_path",
                        help="dump the rollup table as JSON "
                             "('-' for stdout)")
    critical = sub.add_parser(
        "critical-path",
        help="attribute a recorded sweep's wall time across phases "
             "(queue wait, frontend compile, point evaluation, "
             "transfers, retries, probation stalls)")
    critical.add_argument("--log", required=True, metavar="PATH",
                          help="the NDJSON trace log to analyse")
    critical.add_argument("--trace", default=None, metavar="ID",
                          help="pin the analysis to one trace id "
                               "(default: the longest recorded "
                               "sweep)")
    critical.add_argument("--json", dest="json_out",
                          action="store_true",
                          help="print the attribution report as "
                               "JSON instead of the table")


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("action",
                        choices=("stats", "fsck", "gc", "clear"),
                        help="stats: counters and totals; fsck: "
                             "reconcile manifest and directory, "
                             "remove corpses; gc: enforce the given "
                             "bounds now; clear: delete every record")
    parser.add_argument("dir", metavar="DIR",
                        help="the store directory (an `explore "
                             "--cache` or `serve --store` path)")
    parser.add_argument("--max-entries", type=int, default=None,
                        metavar="N",
                        help="for gc: evict down to N records (LRU)")
    parser.add_argument("--max-bytes", type=int, default=None,
                        metavar="N",
                        help="for gc: evict down to N bytes (LRU)")
    parser.add_argument("--json", metavar="PATH", dest="json_path",
                        help="dump the report as JSON "
                             "('-' for stdout)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fpfa-map",
        description="Map a C-subset program onto one FPFA tile, or "
                    "explore the tile design space (reproduction of "
                    "Rosien et al., DATE 2003).")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_map_arguments(subparsers.add_parser(
        "map", help="map one program onto one tile configuration"))
    _add_explore_arguments(subparsers.add_parser(
        "explore", help="sweep tile configurations with repro.dse"))
    _add_serve_arguments(subparsers.add_parser(
        "serve", help="run the mapping daemon (repro.service)"))
    _add_submit_arguments(subparsers.add_parser(
        "submit", help="submit one mapping job to a running daemon"))
    _add_jobs_arguments(subparsers.add_parser(
        "jobs", help="inspect a running daemon's jobs"))
    _add_dashboard_arguments(subparsers.add_parser(
        "dashboard", help="serve the live fleet dashboard "
                          "(repro.obs)"))
    _add_cache_arguments(subparsers.add_parser(
        "cache", help="inspect or maintain a result-cache / "
                      "artifact-store directory"))
    _add_trace_arguments(subparsers.add_parser(
        "trace", help="record, export and analyse distributed "
                      "traces (repro.obs)"))
    lint = subparsers.add_parser(
        "lint", help="run fpfa-lint, the repo-invariant static "
                     "analysis suite (tools/fpfa_lint)")
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments passed through to "
                           "`python -m tools.fpfa_lint` "
                           "(try: --list-checkers)")
    return parser


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _dump_json(payload: dict, path: str) -> None:
    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\nwrote {path}")


# ---------------------------------------------------------------------------
# fpfa-map map
# ---------------------------------------------------------------------------

#: Canonical stage order for the --profile breakdown.
_PROFILE_STAGES = ("parse", "transforms", "taskgraph", "cluster",
                   "schedule", "allocate", "multitile")


def _render_profile(timings: dict[str, float]) -> str:
    """The --profile table: one line per stage, milliseconds, share.

    Known stages render in canonical pipeline order; any stage the
    pipeline grows later still shows up (appended, name order), so
    the shares always sum to the printed total.
    """
    total = sum(timings.values()) or 1e-12
    ordered = [stage for stage in _PROFILE_STAGES if stage in timings]
    ordered += sorted(set(timings) - set(_PROFILE_STAGES))
    lines = ["stage timings:"]
    for stage in ordered:
        seconds = timings[stage]
        lines.append(f"  {stage:<11} {seconds * 1e3:9.2f} ms "
                     f"({seconds / total:5.1%})")
    lines.append(f"  {'total':<11} {total * 1e3:9.2f} ms")
    return "\n".join(lines)


def _cmd_map(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    # With `--json -` stdout carries *only* the JSON payload (for
    # pipelines and the service smoke harness); the human-readable
    # report moves to stderr.
    echo = functools.partial(print, file=sys.stderr) \
        if args.json_path == "-" else print
    try:
        params = TileParams(n_pps=args.pps, n_buses=args.buses)
        array = None
        if args.tiles is not None:
            array = TileArrayParams(
                n_tiles=args.tiles, topology=args.topology,
                hop_latency=args.hop_latency,
                hop_energy=args.hop_energy,
                link_bandwidth=args.link_bandwidth)
    except ValueError as error:
        raise SystemExit(f"invalid configuration: {error}")
    library = TemplateLibrary.stock()[args.library]
    frontend = compile_frontend(source, width=params.width,
                                balance=args.balance)
    original_stats = frontend.original.stats()
    report = map_frontend(frontend, params, library, array=array)

    if args.cdfg:
        echo(f"CDFG before simplification: {original_stats}")
        echo(f"CDFG after  simplification: {report.minimised.stats()}")
        if report.pass_stats is not None:
            echo(f"passes: {report.pass_stats}")
        echo()
    echo(report.summary())
    metrics = mapping_metrics(report)
    echo(f"locality: {metrics['locality']:.0%}  "
         f"energy proxy: {metrics['energy']}")
    if args.profile:
        echo()
        echo(_render_profile(report.timings))
    if report.multitile is not None:
        from repro.eval.report import multitile_table
        echo()
        echo(report.multitile.summary())
        echo()
        echo(multitile_table(report.multitile))
    if args.schedule:
        echo()
        echo(report.schedule.table())
        if report.multitile is not None and \
                report.multitile.n_tiles > 1:
            echo()
            echo(report.multitile.schedule.table())
    if args.gantt:
        from repro.viz import memory_map, program_gantt, schedule_gantt
        echo()
        echo(schedule_gantt(report.schedule, report.params.n_pps))
        echo()
        echo(program_gantt(report.program))
        echo()
        echo(memory_map(report.program))
    if args.listing:
        echo()
        echo(report.program.listing())
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(to_dot(report.minimised))
        echo(f"\nwrote {args.dot}")
    verified = None
    if args.verify_seed is not None:
        state = random_input_state(report, args.verify_seed)
        verify_mapping(report, state)
        verified = True
        echo(f"\nverified against the interpreter "
             f"(seed {args.verify_seed})")
    if args.json_path:
        config = mapping_config(params, args.library,
                                balance=args.balance, array=array)
        payload = report_payload(report, config, file=args.file,
                                 verified=verified, metrics=metrics)
        _dump_json(payload, args.json_path)
    return 0


# ---------------------------------------------------------------------------
# fpfa-map explore
# ---------------------------------------------------------------------------

def _parse_value(text: str):
    lowered = text.strip().lower()
    if lowered in ("true", "on", "yes"):
        return True
    if lowered in ("false", "off", "no"):
        return False
    try:
        return int(text)
    except ValueError:
        return text.strip()


def _parse_value_list(text: str) -> list:
    return [_parse_value(item) for item in text.split(",")
            if item.strip()]


def _explore_space(args: argparse.Namespace):
    from repro.dse import DesignSpace
    from repro.dse.space import SpaceError

    dimensions: dict[str, list] = {}

    def set_dimension(name: str, values: list, flag: str) -> None:
        if name in dimensions:
            raise SystemExit(
                f"{flag} conflicts with an earlier --sweep/shortcut "
                f"for dimension {name!r}")
        dimensions[name] = values

    for spec in args.sweep:
        name, separator, values = spec.partition("=")
        if not separator or not values:
            raise SystemExit(
                f"--sweep expects DIM=V1,V2,.. got {spec!r}")
        set_dimension(name.strip(), _parse_value_list(values),
                      "--sweep")
    if args.pps:
        set_dimension("n_pps", _parse_value_list(args.pps), "--pps")
    if args.buses:
        set_dimension("n_buses", _parse_value_list(args.buses),
                      "--buses")
    if args.libraries:
        set_dimension("library", _parse_value_list(args.libraries),
                      "--libraries")
    if args.tiles:
        set_dimension("tiles", _parse_value_list(args.tiles),
                      "--tiles")
    if args.topologies:
        set_dimension("topology", _parse_value_list(args.topologies),
                      "--topologies")
    if args.balance == "both":
        set_dimension("balance", [False, True], "--balance")
    elif args.balance == "on":
        set_dimension("balance", [True], "--balance")
    elif args.balance == "off":
        set_dimension("balance", [False], "--balance")
    try:
        if not dimensions:
            return DesignSpace.default()
        return DesignSpace(dimensions)
    except SpaceError as error:
        raise SystemExit(str(error))


def _explore_source(args: argparse.Namespace) -> tuple[str, str]:
    if args.kernel and args.file:
        raise SystemExit(
            f"explore takes a file OR --kernel, not both (got "
            f"{args.file!r} and --kernel {args.kernel})")
    if args.kernel:
        from repro.eval.kernels import get_kernel
        try:
            kernel = get_kernel(args.kernel)
        except KeyError as error:
            raise SystemExit(error.args[0])
        return kernel.source, f"kernel {kernel.name}: {kernel.description}"
    if not args.file:
        raise SystemExit("explore needs a C file or --kernel NAME")
    return _read_source(args.file), args.file


def _check_objectives(objectives: list[str], space) -> None:
    """Reject unresolvable objective names *before* the sweep runs —
    a typo must not surface as a crash after minutes of mapping.
    The resolvability rule lives in
    :func:`repro.dse.space.allowed_objectives` (shared with the
    service daemon's request validation)."""
    from repro.dse.space import allowed_objectives

    if not objectives:
        raise SystemExit("--objectives needs at least one name")
    allowed = allowed_objectives(space)
    for name in objectives:
        base = name[1:] if name.startswith("-") else name
        if base not in allowed:
            raise SystemExit(
                f"unknown or unswept objective {base!r}; known here: "
                f"{', '.join(sorted(allowed))} (prefix with '-' to "
                f"maximise)")


def _explore_resume_preview(args: argparse.Namespace, source: str,
                            space, echo) -> None:
    """Validate and narrate ``explore --resume``.

    Resumption itself is free — completed records are already in the
    cache (written incrementally), so the normal cache pass skips
    them and only the missing points are recomputed.  This preview
    reads the checkpoint journal the interrupted coordinator left
    beside the cache to (a) refuse resuming a *different* sweep over
    the same cache and (b) report the recovered/remaining split.
    """
    import pathlib

    from repro.dse.checkpoint import JOURNAL_NAME, load_journal
    from repro.dse.distributed import sweep_identity

    if not args.cache:
        raise SystemExit("--resume needs --cache DIR (the cache the "
                         "interrupted sweep was writing)")
    if args.strategy == "hill":
        raise SystemExit(
            "--resume applies to chunked sweeps; --strategy hill "
            "explores incrementally and keeps no journal")
    journal_path = pathlib.Path(args.cache).expanduser() \
        / JOURNAL_NAME
    state = load_journal(journal_path)
    if state is None:
        echo(f"resume: no checkpoint journal at {journal_path} — "
             "running fresh (cache hits still count)")
        return
    points = space.grid() if args.strategy == "exhaustive" \
        else space.sample(args.samples, seed=args.seed)
    identity = sweep_identity(source, points, args.verify_seed)
    if state.sweep != identity:
        raise SystemExit(
            f"--resume: the journal at {journal_path} belongs to a "
            f"different sweep (journal {state.sweep}, this request "
            f"{identity}); point --cache at the interrupted sweep's "
            "cache or drop --resume")
    recovered = len(state.completed)
    echo(f"resume: journal matches (sweep {identity}); "
         f"{recovered} of {len(state.pending)} interrupted point(s) "
         f"already completed, {len(state.remaining)} to recompute"
         + (" (previous run finished cleanly)"
            if state.ended else ""))


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.dse import frontier_table, pareto_front
    from repro.dse.runner import SweepResult
    from repro.dse.search import STRATEGIES
    from repro.dse.space import DesignPoint
    from repro.eval.report import render_table

    source, workload = _explore_source(args)
    space = _explore_space(args)
    # `--json -`: stdout is pure JSON, human output moves to stderr.
    echo = functools.partial(print, file=sys.stderr) \
        if args.json_path == "-" else print
    objectives = [item.strip() for item in args.objectives.split(",")
                  if item.strip()]
    _check_objectives(objectives, space)
    strategy = STRATEGIES[args.strategy]
    run_kwargs = dict(cache=args.cache,
                      verify_seed=args.verify_seed)
    if args.cache_max_entries is not None \
            or args.cache_max_bytes is not None:
        if not args.cache:
            raise SystemExit("--cache-max-entries/--cache-max-bytes "
                             "need --cache DIR")
        run_kwargs.update(cache_max_entries=args.cache_max_entries,
                          cache_max_bytes=args.cache_max_bytes)
    if args.workers is not None:
        # Leave the key out otherwise: each strategy picks its own
        # default (hill-climb stays in-process, sweeps use all CPUs).
        run_kwargs["workers"] = args.workers
    if args.remote:
        from repro.dse.distributed import (
            DistributedError,
            parse_remotes,
        )
        if args.strategy == "hill":
            # Hill-climbing evaluates single points and tiny
            # neighbour batches incrementally; leasing those over
            # HTTP (with a fleet probe per batch) is strictly slower
            # than local evaluation — refuse rather than degrade.
            raise SystemExit(
                "--remote cannot shard --strategy hill (it explores "
                "in tiny sequential batches); use exhaustive or "
                "random, or drop --remote")
        try:
            fleet = parse_remotes(args.remote)
        except DistributedError as error:
            raise SystemExit(str(error))
        if args.chunk_size < 1:
            raise SystemExit(
                f"--chunk-size must be >= 1, got {args.chunk_size}")
        run_kwargs.update(remotes=fleet,
                          remote_chunk_size=args.chunk_size,
                          remote_timeout=args.remote_timeout)
        echo(f"fleet: {len(fleet)} remote daemon(s): "
             + ", ".join(f"{host}:{port}" for host, port in fleet))
    if args.resume:
        _explore_resume_preview(args, source, space, echo)
    if args.strategy == "random":
        extra = dict(n_samples=args.samples, seed=args.seed)
    elif args.strategy == "hill":
        extra = dict(max_steps=args.max_steps, restarts=args.restarts,
                     seed=args.seed)
    else:
        extra = {}

    echo(f"workload: {workload}")
    echo(space.describe())
    result = strategy(source, space, objectives=objectives,
                      **extra, **run_kwargs)
    echo(f"sweep: {result.stats.summary()}")
    echo()
    # Extract the front once; rendering an already-non-dominated set
    # through frontier_table is idempotent and cheap.
    front = pareto_front(result.records, objectives)
    echo(frontier_table(front, objectives))
    if args.table:
        table = SweepResult(records=result.records)
        echo()
        echo(render_table(table.rows(), title="All evaluated points"))
    echo()
    if result.best is not None:
        best_label = DesignPoint.from_dict(result.best["point"]).label()
        echo(f"best ({', '.join(objectives)}): {best_label}")
        echo(f"  metrics: {result.best['metrics']}")
    else:
        echo("best: no feasible point in the space")
    failures = [record for record in result.records
                if not record["ok"]]
    if failures:
        echo(f"{len(failures)} point(s) failed; first: "
             f"{failures[0]['error']}")
    exit_code = 0 if result.best is not None else 1
    if args.json_path:
        # stats.as_dict() is the full provenance ledger: for a
        # --remote run it is a DistributedSweepStats, so the
        # shard/steal/fallback counters (daemons, leases, stolen,
        # local_records, ...) land in the payload for scripts and
        # dashboards.
        _dump_json({
            "workload": workload,
            "strategy": args.strategy,
            "objectives": objectives,
            "stats": result.stats.as_dict(),
            "best": result.best,
            "frontier": front,
            "records": result.records,
        }, args.json_path)
    return exit_code


# ---------------------------------------------------------------------------
# fpfa-map serve / submit / jobs  (the repro.service surface)
# ---------------------------------------------------------------------------

def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.daemon import MappingService

    service = MappingService(store=args.store, workers=args.workers,
                             worker_mode=args.worker_mode,
                             max_queue=args.max_queue,
                             store_max_entries=args.store_max_entries,
                             store_max_bytes=args.store_max_bytes)

    async def _serve() -> None:
        host, port = await service.start(args.host, args.port)
        print(f"fpfa-map service listening on http://{host}:{port}")
        print(f"artifact store: {service.store.root} "
              f"({len(service.store)} records)")
        print(f"workers: {service.pool.workers} "
              f"({service.pool.mode}); POST /shutdown or Ctrl-C "
              f"to stop")
        sys.stdout.flush()
        try:
            await service.wait_shutdown()
        finally:
            await service.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _submit_request(args: argparse.Namespace, source: str) -> dict:
    """The map-job request for one parsed `submit` invocation."""
    request = {"kind": "map", "source": source, "file": args.file,
               "pps": args.pps, "buses": args.buses,
               "library": args.library, "balance": args.balance,
               "verify_seed": args.verify_seed,
               "priority": args.priority}
    if args.tiles is not None:
        request.update({"tiles": args.tiles,
                        "topology": args.topology,
                        "hop_latency": args.hop_latency,
                        "hop_energy": args.hop_energy,
                        "link_bandwidth": args.link_bandwidth})
    return request


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    source = _read_source(args.file)
    client = ServiceClient(args.host, args.port)
    # Status chatter always goes to stderr: `submit`'s stdout is the
    # result payload (bit-identical to `map --json -`), pipeline-safe
    # by default.
    echo = functools.partial(print, file=sys.stderr)
    try:
        response = client.submit(_submit_request(args, source))
        job = response["job"]
        echo(f"job {job['id']}: {job['state']}"
             + (" (coalesced)" if response["coalesced"] else "")
             + (f" [{job['meta'].get('cache')}]"
                if job['meta'].get('cache') else ""))
        if args.no_wait:
            echo(f"poll with: fpfa-map jobs --job {job['id']} "
                 f"--host {args.host} --port {args.port}")
            return 0
        if job["state"] == "done":
            payload = job["result"]
        else:
            payload = client.result(job["id"], timeout=args.timeout)
    except ServiceError as error:
        raise SystemExit(f"service error: {error}")
    except (ConnectionError, OSError) as error:
        raise SystemExit(
            f"cannot reach the daemon at {client.url}: {error} "
            f"(is `fpfa-map serve` running?)")
    _dump_json(payload, args.json_path)
    return 0


def _render_jobs_table(views: list[dict]) -> str:
    from repro.eval.report import render_table
    columns = ("id", "kind", "state", "priority", "submits", "file")
    rows = [{name: ("" if view.get(name) is None else view[name])
             for name in columns} for view in views]
    return render_table(rows, columns=columns)


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port)
    try:
        if args.job and args.follow:
            for event in client.events(args.job):
                print(json.dumps(event, sort_keys=True))
            return 0
        if args.job:
            view = client.job(args.job)
            _dump_json(view, args.json_path or "-")
            return 0
        views = client.jobs(state=args.state)
    except ServiceError as error:
        raise SystemExit(f"service error: {error}")
    except (ConnectionError, OSError) as error:
        raise SystemExit(
            f"cannot reach the daemon at {client.url}: {error} "
            f"(is `fpfa-map serve` running?)")
    if args.json_path:
        _dump_json({"jobs": views}, args.json_path)
    else:
        print(_render_jobs_table(views))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Operate on a store directory offline (`fpfa-map cache`).

    Uses :class:`~repro.service.store.ArtifactStore` — the same
    class the daemon and the sweeps use — so what this subcommand
    reports is exactly what they would see.  ``stats`` and ``fsck``
    never need bounds; ``gc`` requires at least one.
    """
    from repro.service.store import ArtifactStore

    if not os.path.isdir(args.dir):
        # Opening would silently create an empty store — for an
        # inspection tool a typo'd path must be an error instead.
        raise SystemExit(f"no store directory: {args.dir}")
    if args.action == "gc" and args.max_entries is None \
            and args.max_bytes is None:
        raise SystemExit("cache gc needs --max-entries and/or "
                         "--max-bytes (the bound to enforce)")
    store = ArtifactStore(args.dir, max_entries=args.max_entries,
                          max_bytes=args.max_bytes)
    if args.action == "stats":
        payload = store.stats()
    elif args.action == "fsck":
        payload = store.fsck()
    elif args.action == "gc":
        payload = store.gc()
    else:  # clear
        payload = {"removed": store.clear()}
    if args.json_path:
        _dump_json(payload, args.json_path)
    else:
        print(f"store: {store.root}")
        for name, value in payload.items():
            print(f"  {name}: {value}")
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.dse.distributed import DistributedError
    from repro.obs.dashboard import serve_dashboard

    try:
        serve_dashboard(args.remote, host=args.host, port=args.port,
                        interval=args.interval)
    except DistributedError as error:
        raise SystemExit(str(error))
    return 0


# ---------------------------------------------------------------------------
# fpfa-map trace  (the distributed-tracing surface)
# ---------------------------------------------------------------------------

def _trace_fleet(specs: list) -> list[str]:
    """``--remote`` values as ``host:port`` harvest targets."""
    from repro.dse.distributed import DistributedError, parse_remotes
    try:
        return [f"{host}:{port}"
                for host, port in parse_remotes(specs)]
    except DistributedError as error:
        raise SystemExit(str(error))


def _cmd_trace_record(args: argparse.Namespace) -> int:
    """`explore` under the flight recorder: spans stream to an
    NDJSON log while the sweep runs, and when it finishes the
    remote daemons' ``/trace`` rings are harvested into the same
    log — one file holding the whole stitched tree.  Daemons record
    their side because the coordinator's trace context rides every
    lease (`request["trace"]`), not because of anything this
    command sets remotely."""
    from repro.obs.export import (
        TRACE_LOG_NAME,
        harvest_daemons,
        recording,
    )

    log_path = args.trace_log
    if log_path is None:
        log_path = os.path.join(args.cache, TRACE_LOG_NAME) \
            if args.cache else TRACE_LOG_NAME
    echo = functools.partial(print, file=sys.stderr) \
        if args.json_path == "-" else print
    with recording(log_path) as recorder:
        code = _cmd_explore(args)
        harvested = 0
        if args.remote:
            harvested = harvest_daemons(
                _trace_fleet(args.remote), recorder,
                trace_ids=recorder.seen_traces)
    echo(f"trace: {recorder.written} entries "
         f"({harvested} harvested from "
         f"{len(args.remote)} remote(s)) -> {log_path}")
    return code


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        return _cmd_trace_record(args)

    from repro.obs.export import load_trace

    if args.trace_command == "export":
        from repro.obs.export import harvest_daemons, to_chrome_trace
        entries = load_trace(args.log)
        if args.remote:
            known = {entry.get("trace") for entry in entries
                     if isinstance(entry.get("trace"), str)}
            if harvest_daemons(_trace_fleet(args.remote), args.log,
                               trace_ids=known or None):
                entries = load_trace(args.log)
        if not entries:
            raise SystemExit(f"no trace entries in {args.log}")
        _dump_json(to_chrome_trace(entries), args.out)
        return 0

    if args.trace_command == "report":
        from repro.obs.export import rollup
        table = rollup(load_trace(args.log))
        if not table:
            raise SystemExit(f"no span entries in {args.log}")
        if args.json_path:
            _dump_json(table, args.json_path)
            return 0
        print(f"{'span':<30} {'count':>6} {'total':>10} "
              f"{'mean':>10} {'min':>10} {'max':>10}")
        for name, stats in sorted(table.items(),
                                  key=lambda item: -item[1]["total"]):
            mean = stats["total"] / stats["count"]
            print(f"{name:<30} {stats['count']:>6.0f} "
                  f"{stats['total'] * 1e3:>8.1f}ms "
                  f"{mean * 1e3:>8.2f}ms "
                  f"{stats['min'] * 1e3:>8.2f}ms "
                  f"{stats['max'] * 1e3:>8.2f}ms")
        return 0

    # critical-path
    from repro.obs.critical import critical_path, render_critical
    entries = load_trace(args.log)
    if not entries:
        raise SystemExit(f"no trace entries in {args.log}")
    report = critical_path(entries, trace_id=args.trace)
    if args.json_out:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_critical(report))
    return 0 if report["total"] > 0 else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Passthrough to ``python -m tools.fpfa_lint`` that works from
    any cwd — the linter lives outside the installed package, so it
    needs a repository checkout."""
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    if not os.path.isdir(os.path.join(root, "tools", "fpfa_lint")):
        print(f"fpfa-map lint: no tools/fpfa_lint under {root} — "
              f"linting needs a repository checkout",
              file=sys.stderr)
        return 2
    if root not in sys.path:
        sys.path.insert(0, root)
    from tools.fpfa_lint.__main__ import main as lint_main
    return lint_main(args.lint_args)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `fpfa-map program.c ...` still means `map`.  A
    # lone argument that names an existing file wins over the
    # subcommand reading even if the file is called `map`/`explore`;
    # with further arguments the subcommand interpretation wins
    # (write `./map` to map such a file).
    if argv and (argv[0] not in SUBCOMMANDS
                 or (len(argv) == 1 and os.path.isfile(argv[0]))) \
            and argv[0] not in ("-h", "--help"):
        argv.insert(0, "map")
    if argv and argv[0] == "lint":
        # Routed before argparse: REMAINDER cannot start with an
        # option string on newer Pythons, and fpfa-lint owns its
        # own --help anyway.
        return _cmd_lint(argparse.Namespace(command="lint",
                                            lint_args=argv[1:]))
    args = _build_parser().parse_args(argv)
    commands = {"map": _cmd_map, "explore": _cmd_explore,
                "serve": _cmd_serve, "submit": _cmd_submit,
                "jobs": _cmd_jobs, "dashboard": _cmd_dashboard,
                "cache": _cmd_cache, "trace": _cmd_trace,
                "lint": _cmd_lint}
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    try:
        exit_code = main()
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `... | head`); the
        # conventional silent exit, not a traceback.
        exit_code = 141
    sys.exit(exit_code)
