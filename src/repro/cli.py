"""Command-line driver: map a C file onto an FPFA tile.

Usage::

    fpfa-map program.c [--listing] [--schedule] [--cdfg] [--dot out.dot]
             [--taps] [--pps N] [--buses N] [--library two-level|single-op|mac]
             [--verify-seed SEED]

Prints the mapping summary (clusters, levels, cycles, locality) and,
on request, the minimised CDFG statistics, the level schedule, the
per-cycle program listing, a Graphviz dump of the CDFG, and an
end-to-end verification run against the reference interpreter with
deterministic random inputs.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.arch.params import TileParams
from repro.arch.templates import TemplateLibrary
from repro.cdfg.builder import build_main_cdfg
from repro.cdfg.dot import to_dot
from repro.cdfg.statespace import StateSpace
from repro.core.pipeline import map_graph, verify_mapping
from repro.eval.metrics import mapping_metrics


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fpfa-map",
        description="Map a C-subset program onto one FPFA tile "
                    "(reproduction of Rosien et al., DATE 2003).")
    parser.add_argument("file", help="C source file (use '-' for stdin)")
    parser.add_argument("--pps", type=int, default=5,
                        help="processing parts per tile (default 5)")
    parser.add_argument("--buses", type=int, default=10,
                        help="crossbar buses per cycle (default 10)")
    parser.add_argument("--library", default="two-level",
                        choices=sorted(TemplateLibrary.stock()),
                        help="ALU data-path template library")
    parser.add_argument("--balance", action="store_true",
                        help="reassociate accumulation chains into "
                             "balanced trees (shorter critical path)")
    parser.add_argument("--listing", action="store_true",
                        help="print the per-cycle program")
    parser.add_argument("--schedule", action="store_true",
                        help="print the level schedule (Fig. 4 style)")
    parser.add_argument("--gantt", action="store_true",
                        help="print ASCII occupancy charts (schedule "
                             "and per-cycle program)")
    parser.add_argument("--cdfg", action="store_true",
                        help="print CDFG statistics before/after "
                             "simplification")
    parser.add_argument("--dot", metavar="PATH",
                        help="write the minimised CDFG as Graphviz DOT")
    parser.add_argument("--verify-seed", type=int, default=None,
                        metavar="SEED",
                        help="verify program vs interpreter with random "
                             "inputs from SEED")
    return parser


def _random_state_for(report, seed: int) -> StateSpace:
    """Random values for every input address the program reads."""
    rng = random.Random(seed)
    state = StateSpace()
    for address in report.taskgraph.input_addresses():
        state = state.store(address, rng.randint(-99, 99))
    return state


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.file == "-":
        source = sys.stdin.read()
    else:
        with open(args.file, encoding="utf-8") as handle:
            source = handle.read()

    params = TileParams(n_pps=args.pps, n_buses=args.buses)
    library = TemplateLibrary.stock()[args.library]
    graph = build_main_cdfg(source)
    original_stats = graph.stats()
    report = map_graph(graph, params, library, source=source,
                       balance=args.balance)

    if args.cdfg:
        print(f"CDFG before simplification: {original_stats}")
        print(f"CDFG after  simplification: {report.minimised.stats()}")
        if report.pass_stats is not None:
            print(f"passes: {report.pass_stats}")
        print()
    print(report.summary())
    metrics = mapping_metrics(report)
    print(f"locality: {metrics['locality']:.0%}  "
          f"energy proxy: {metrics['energy']}")
    if args.schedule:
        print()
        print(report.schedule.table())
    if args.gantt:
        from repro.viz import memory_map, program_gantt, schedule_gantt
        print()
        print(schedule_gantt(report.schedule, report.params.n_pps))
        print()
        print(program_gantt(report.program))
        print()
        print(memory_map(report.program))
    if args.listing:
        print()
        print(report.program.listing())
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as handle:
            handle.write(to_dot(report.minimised))
        print(f"\nwrote {args.dot}")
    if args.verify_seed is not None:
        state = _random_state_for(report, args.verify_seed)
        verify_mapping(report, state)
        print(f"\nverified against the interpreter "
              f"(seed {args.verify_seed})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
