"""repro — reproduction of "Mapping Applications to an FPFA Tile".

Rosien, Guo, Smit, Krol — DATE 2003.

A transformational design flow mapping C-subset programs onto one tile
of the FPFA word-level reconfigurable architecture:

1. translation to a Control Data Flow Graph (:mod:`repro.lang`,
   :mod:`repro.cdfg`);
2. behaviour-preserving minimisation — complete loop unrolling and
   full simplification (:mod:`repro.transforms`);
3. three-phase mapping — clustering on ALU data-paths, level
   scheduling on the 5 ALUs, heuristic resource allocation
   (:mod:`repro.core`);
4. execution of the resulting per-cycle tile program on a cycle-level
   simulator of the tile (:mod:`repro.arch`).

Quickstart::

    from repro import map_source, verify_mapping, StateSpace

    report = map_source('''
        void main() {
          sum = 0; i = 0;
          while (i < 5) { sum = sum + a[i] * c[i]; i = i + 1; }
        }
    ''')
    print(report.summary())
    state = StateSpace().store_array("a", [1, 2, 3, 4, 5]) \\
                        .store_array("c", [5, 4, 3, 2, 1])
    final = verify_mapping(report, state)
    print(final.fetch("sum"))
"""

from repro.arch import (
    EnergyModel,
    TemplateLibrary,
    TileParams,
    TileProgram,
    measure_energy,
    simulate,
)
from repro.cdfg import (
    Address,
    Graph,
    OpKind,
    StateSpace,
    build_main_cdfg,
    run_graph,
    run_main,
    to_dot,
    validate,
)
from repro.core import (
    MappingError,
    MappingReport,
    TaskGraph,
    map_graph,
    map_source,
    verify_mapping,
)
from repro.lang import parse_program
from repro.transforms import simplify

__version__ = "1.0.0"

__all__ = [
    "Address",
    "EnergyModel",
    "Graph",
    "MappingError",
    "MappingReport",
    "OpKind",
    "StateSpace",
    "TaskGraph",
    "TemplateLibrary",
    "TileParams",
    "TileProgram",
    "__version__",
    "build_main_cdfg",
    "map_graph",
    "map_source",
    "measure_energy",
    "parse_program",
    "run_graph",
    "run_main",
    "simplify",
    "simulate",
    "to_dot",
    "validate",
    "verify_mapping",
]
